package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzTraceExport hardens the Chrome trace-event writer against hostile
// span records: whatever bytes land in span names, IDs or attribute
// values — quotes, newlines, invalid UTF-8, negative durations, dangling
// parent references — the writer must emit a syntactically valid JSON
// document with a traceEvents array covering every input span.
func FuzzTraceExport(f *testing.F) {
	f.Add("search", "t1", "s1", "", "party", "A", int64(12345), int64(-7))
	f.Add(`quo"te`, "t\n2", "s2", "missing-parent", "k\x00ey", "v\xffal", int64(-1), int64(1e9))
	f.Add("", "", "", "", "", "", int64(0), int64(0))
	f.Add("rtk_query", "t1", "s3", "s1", "term", "deadbeef", int64(99), int64(42))

	f.Fuzz(func(t *testing.T, name, traceID, spanID, parentID, key, val string, start, dur int64) {
		spans := []SpanRecord{
			{Name: name, TraceID: traceID, SpanID: spanID, ParentID: parentID,
				StartUnixNano: start, DurationNanos: dur,
				Attrs: []Attr{{Key: key, Value: val}}},
			{Name: "child-" + name, TraceID: traceID, SpanID: spanID + "c", ParentID: spanID,
				StartUnixNano: start + 1, DurationNanos: dur / 2,
				Attrs: []Attr{AStr(key, val), AInt("attempt", dur)}},
		}
		var b bytes.Buffer
		if err := WriteChromeTrace(&b, spans); err != nil {
			t.Fatalf("WriteChromeTrace: %v", err)
		}
		if !json.Valid(b.Bytes()) {
			t.Fatalf("invalid JSON output: %q", b.String())
		}
		var doc struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if len(doc.TraceEvents) != len(spans) {
			t.Fatalf("got %d events for %d spans", len(doc.TraceEvents), len(spans))
		}
	})
}
