package telemetry

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestDebugServer(t *testing.T) {
	r := NewRegistry()
	r.Counter("csfltr_test_hits_total", "hits").Add(3)
	d, err := ServeDebug(r, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + d.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	if out := get("/metrics"); !strings.Contains(out, "csfltr_test_hits_total 3") {
		t.Fatalf("/metrics missing counter:\n%s", out)
	}
	// The runtime collector ran at least once at startup.
	if out := get("/metrics"); !strings.Contains(out, "csfltr_runtime_goroutines") {
		t.Fatalf("/metrics missing runtime gauges:\n%s", out)
	}
	if out := get("/debug/vars"); !strings.Contains(out, `"csfltr_test_hits_total"`) {
		t.Fatalf("/debug/vars missing counter:\n%s", out)
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}

func TestRuntimeCollectorStop(t *testing.T) {
	r := NewRegistry()
	stop := StartRuntimeCollector(r, time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	stop()
	stop() // idempotent
	if r.Gauge("csfltr_runtime_goroutines", "").Value() <= 0 {
		t.Fatal("runtime collector never collected")
	}
}
