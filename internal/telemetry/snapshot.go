package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"sort"
)

// BucketCount is one cumulative histogram bucket in a snapshot.
type BucketCount struct {
	UpperBound float64 `json:"le"` // +Inf encodes as the string "+Inf" via MarshalJSON below
	Count      int64   `json:"count"`
}

// SeriesSnapshot is one labeled series at snapshot time.
type SeriesSnapshot struct {
	Labels map[string]string `json:"labels,omitempty"`
	// Value carries the counter or gauge reading.
	Value float64 `json:"value,omitempty"`
	// Count, Sum and Buckets carry histogram state; Buckets are
	// cumulative with an explicit +Inf terminal bucket.
	Count   int64         `json:"count,omitempty"`
	Sum     float64       `json:"sum,omitempty"`
	Buckets []BucketCount `json:"buckets,omitempty"`
	// Exemplars link tail buckets to the trace IDs that last landed in
	// them; present only for histograms observed through traced spans.
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// MetricSnapshot is one family at snapshot time.
type MetricSnapshot struct {
	Name   string           `json:"name"`
	Type   string           `json:"type"`
	Help   string           `json:"help,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot is a point-in-time JSON-able view of a whole registry — the
// expvar-style API tests and benchmarks consume.
type Snapshot struct {
	Metrics []MetricSnapshot `json:"metrics"`
	Events  []Event          `json:"events,omitempty"`
}

// Snapshot captures every family, sorted by name, each with series
// sorted by label signature.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var snap Snapshot
	for _, f := range fams {
		ms := MetricSnapshot{Name: f.name, Type: f.typ.String(), Help: f.help}
		r.mu.Lock()
		sigs := make([]string, 0, len(f.series))
		for sig := range f.series {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		series := make([]any, 0, len(sigs))
		for _, sig := range sigs {
			series = append(series, f.series[sig])
		}
		r.mu.Unlock()
		for _, s := range series {
			ms.Series = append(ms.Series, snapshotSeries(s))
		}
		snap.Metrics = append(snap.Metrics, ms)
	}
	snap.Events = r.Events()
	return snap
}

// snapshotSeries converts one live series into its snapshot form.
func snapshotSeries(s any) SeriesSnapshot {
	switch m := s.(type) {
	case *Counter:
		return SeriesSnapshot{Labels: labelMap(m.labels), Value: float64(m.Value())}
	case *Gauge:
		return SeriesSnapshot{Labels: labelMap(m.labels), Value: m.Value()}
	case *GaugeFunc:
		return SeriesSnapshot{Labels: labelMap(m.labels), Value: m.Value()}
	case *Histogram:
		out := SeriesSnapshot{Labels: labelMap(m.labels), Count: m.Count(), Sum: m.Sum()}
		bounds := m.Bounds()
		counts := m.BucketCounts()
		var cum int64
		for i, c := range counts {
			cum += c
			ub := math.Inf(1)
			if i < len(bounds) {
				ub = bounds[i]
			}
			out.Buckets = append(out.Buckets, BucketCount{UpperBound: ub, Count: cum})
		}
		out.Exemplars = m.Exemplars()
		return out
	default:
		return SeriesSnapshot{}
	}
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of a histogram series
// from its cumulative buckets, returning the upper bound of the bucket
// the quantile falls into — the same estimate the live Histogram
// reports. NaN when the series is empty or not a histogram; +Inf when
// the quantile lands in the overflow bucket.
func (s SeriesSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return math.NaN()
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	for _, b := range s.Buckets {
		if b.Count >= rank {
			return b.UpperBound
		}
	}
	return math.Inf(1)
}

// MarshalJSON renders the +Inf bucket bound as the string "+Inf" (JSON
// has no infinity literal).
func (b BucketCount) MarshalJSON() ([]byte, error) {
	type bucket struct {
		UpperBound any   `json:"le"`
		Count      int64 `json:"count"`
	}
	ub := any(b.UpperBound)
	if math.IsInf(b.UpperBound, 1) {
		ub = "+Inf"
	}
	return json.Marshal(bucket{UpperBound: ub, Count: b.Count})
}

// labelMap converts sorted labels into a map for JSON.
func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	out := make(map[string]string, len(labels))
	for _, l := range labels {
		out[l.Key] = l.Value
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Metric returns the named family from the snapshot, or nil.
func (s Snapshot) Metric(name string) *MetricSnapshot {
	for i := range s.Metrics {
		if s.Metrics[i].Name == name {
			return &s.Metrics[i]
		}
	}
	return nil
}
