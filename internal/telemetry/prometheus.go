package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, each with # HELP and
// # TYPE lines, histogram series expanded into cumulative _bucket /
// _sum / _count samples.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	for _, m := range snap.Metrics {
		if m.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, escapeHelp(m.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Type); err != nil {
			return err
		}
		for _, s := range m.Series {
			if err := writeSeries(w, m, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSeries writes one series' sample lines.
func writeSeries(w io.Writer, m MetricSnapshot, s SeriesSnapshot) error {
	if m.Type != "histogram" {
		_, err := fmt.Fprintf(w, "%s%s %s\n", m.Name, renderLabels(s.Labels, "", 0), formatValue(s.Value))
		return err
	}
	for _, b := range s.Buckets {
		le := "+Inf"
		if !math.IsInf(b.UpperBound, 1) {
			le = formatValue(b.UpperBound)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, renderLabels(s.Labels, le, 1), b.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.Name, renderLabels(s.Labels, "", 0), formatValue(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.Name, renderLabels(s.Labels, "", 0), s.Count)
	return err
}

// renderLabels renders a sorted label block, optionally appending the
// histogram `le` label (mode 1).
func renderLabels(labels map[string]string, le string, mode int) string {
	if len(labels) == 0 && mode == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sortStrings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	if mode == 1 {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// sortStrings sorts in place (tiny helper to avoid importing sort twice
// conceptually; kept for symmetry with renderLabels' hot path).
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// formatValue renders a float sample the way Prometheus expects.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// escapeHelp escapes a help string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format — mount it at /v1/metrics or /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
