package telemetry

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the distributed-tracing extension of the span model: spans
// gain a trace ID / span ID / parent ID plus a small bag of typed
// attributes, completed spans are retained per trace in a bounded store,
// and a slow-query log links histogram tails to trace IDs (exemplars).
//
// Privacy contract: attribute values MUST be privacy-safe — party names,
// transports, counters, keyed term hashes. Raw query terms, document
// payloads and anything marked //csfltr:private never enter an Attr; the
// privacyboundary analyzer fixtures pin this down (any stringification
// of a private value trips the fmt/marshal sink checks).

// SpanContext identifies a span's position in a trace: the trace it
// belongs to and its own span ID. The zero value is invalid and means
// "not traced".
type SpanContext struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
}

// Valid reports whether the context carries a usable trace identity.
func (c SpanContext) Valid() bool { return c.TraceID != "" && c.SpanID != "" }

// Attr is one typed key/value attribute on a span. Unlike metric Labels,
// attrs live on individual spans inside the bounded trace store, so
// high-cardinality values (trace IDs, keyed term hashes, attempt
// numbers) are fine here and do not create metric series.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// AStr builds a string attribute.
func AStr(key, value string) Attr { return Attr{Key: key, Value: value} }

// AInt builds an integer attribute.
func AInt(key string, v int64) Attr { return Attr{Key: key, Value: strconv.FormatInt(v, 10)} }

// AFloat builds a float attribute.
func AFloat(key string, v float64) Attr {
	return Attr{Key: key, Value: strconv.FormatFloat(v, 'g', -1, 64)}
}

// ABool builds a boolean attribute.
func ABool(key string, v bool) Attr { return Attr{Key: key, Value: strconv.FormatBool(v)} }

// SpanRecord is one completed span as retained by the trace store and
// served from GET /v1/trace/{id}.
type SpanRecord struct {
	Name          string `json:"name"`
	TraceID       string `json:"trace_id"`
	SpanID        string `json:"span_id"`
	ParentID      string `json:"parent_id,omitempty"`
	RequestID     string `json:"request_id,omitempty"`
	StartUnixNano int64  `json:"start_unix_nano"`
	DurationNanos int64  `json:"duration_nanos"`
	Attrs         []Attr `json:"attrs,omitempty"`
}

// Attr returns the value of the named attribute ("" when absent).
func (s SpanRecord) Attr(key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// traceIDCounter numbers trace and span IDs within the process; the
// shared requestIDPrefix keeps IDs from different silos distinct.
var traceIDCounter atomic.Uint64

// NewTraceID returns a new process-unique trace identifier.
func NewTraceID() string {
	return fmt.Sprintf("t%s%010x", requestIDPrefix, traceIDCounter.Add(1))
}

// newSpanID returns a new process-unique span identifier.
func newSpanID() string {
	return fmt.Sprintf("s%s%010x", requestIDPrefix, traceIDCounter.Add(1))
}

// traceStore retains completed spans grouped by trace, bounded both in
// the number of traces (FIFO eviction of whole traces) and in spans per
// trace (excess spans are dropped and counted).
type traceStore struct {
	mu            sync.Mutex
	maxTraces     int
	maxSpansPer   int
	traces        map[string]*traceEntry
	order         []string // trace IDs in first-seen order, for eviction
	droppedSpans  int64
	evictedTraces int64
}

type traceEntry struct {
	spans   []SpanRecord
	dropped int
}

func newTraceStore(maxTraces, maxSpansPer int) *traceStore {
	return &traceStore{
		maxTraces:   maxTraces,
		maxSpansPer: maxSpansPer,
		traces:      make(map[string]*traceEntry, maxTraces),
	}
}

func (ts *traceStore) add(rec SpanRecord) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	e, ok := ts.traces[rec.TraceID]
	if !ok {
		for len(ts.order) >= ts.maxTraces {
			oldest := ts.order[0]
			ts.order = ts.order[1:]
			delete(ts.traces, oldest)
			ts.evictedTraces++
		}
		e = &traceEntry{}
		ts.traces[rec.TraceID] = e
		ts.order = append(ts.order, rec.TraceID)
	}
	if len(e.spans) >= ts.maxSpansPer {
		e.dropped++
		ts.droppedSpans++
		return
	}
	e.spans = append(e.spans, rec)
}

func (ts *traceStore) trace(id string) ([]SpanRecord, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	e, ok := ts.traces[id]
	if !ok {
		return nil, false
	}
	return append([]SpanRecord(nil), e.spans...), true
}

func (ts *traceStore) ids() []string {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return append([]string(nil), ts.order...)
}

func (ts *traceStore) reset() {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.traces = make(map[string]*traceEntry, ts.maxTraces)
	ts.order = nil
	ts.droppedSpans, ts.evictedTraces = 0, 0
}

// EnableTracing turns on the trace store: traced spans ended after this
// call are retained, grouped by trace ID. maxTraces bounds the number of
// retained traces (oldest evicted first); maxSpansPerTrace bounds each
// trace's span count (excess dropped). Non-positive arguments select the
// defaults (256 traces × 512 spans). Enabling is idempotent.
func (r *Registry) EnableTracing(maxTraces, maxSpansPerTrace int) {
	if maxTraces <= 0 {
		maxTraces = 256
	}
	if maxSpansPerTrace <= 0 {
		maxSpansPerTrace = 512
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.traces == nil {
		r.traces = newTraceStore(maxTraces, maxSpansPerTrace)
	}
}

// TracingEnabled reports whether the trace store is active.
func (r *Registry) TracingEnabled() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.traces != nil
}

// Trace returns the retained spans of one trace, in end order.
func (r *Registry) Trace(id string) ([]SpanRecord, bool) {
	r.mu.Lock()
	ts := r.traces
	r.mu.Unlock()
	if ts == nil {
		return nil, false
	}
	return ts.trace(id)
}

// TraceIDs returns the retained trace IDs, oldest first.
func (r *Registry) TraceIDs() []string {
	r.mu.Lock()
	ts := r.traces
	r.mu.Unlock()
	if ts == nil {
		return nil
	}
	return ts.ids()
}

// SlowEntry is one slow-query log record: a histogram tail sample linked
// to the trace that produced it.
type SlowEntry struct {
	Name          string  `json:"name"`
	TraceID       string  `json:"trace_id"`
	RequestID     string  `json:"request_id,omitempty"`
	StartUnixNano int64   `json:"start_unix_nano"`
	DurationNanos int64   `json:"duration_nanos"`
	ThresholdSecs float64 `json:"threshold_seconds"`
}

// slowLog is a bounded ring of SlowEntry records.
type slowLog struct {
	mu    sync.Mutex
	buf   []SlowEntry
	next  int
	full  bool
	floor time.Duration
}

// slowMinCount is how many observations a histogram needs before its p99
// bound is trusted for slow-query admission.
const slowMinCount = 20

func (l *slowLog) consider(h *Histogram, name string, ctx SpanContext, reqID string, start time.Time, d time.Duration) {
	var threshold float64
	switch {
	case l.floor > 0 && d >= l.floor:
		threshold = l.floor.Seconds()
	case h != nil && h.Count() >= slowMinCount:
		p99 := h.Quantile(0.99)
		if !(d.Seconds() >= p99) { // NaN-safe: records only when d reached the bound
			return
		}
		threshold = p99
	default:
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf[l.next] = SlowEntry{
		Name:          name,
		TraceID:       ctx.TraceID,
		RequestID:     reqID,
		StartUnixNano: start.UnixNano(),
		DurationNanos: int64(d),
		ThresholdSecs: threshold,
	}
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
		l.full = true
	}
}

func (l *slowLog) entries() []SlowEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.full {
		return append([]SlowEntry(nil), l.buf[:l.next]...)
	}
	out := make([]SlowEntry, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	return append(out, l.buf[:l.next]...)
}

func (l *slowLog) reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.next, l.full = 0, false
}

// EnableSlowLog turns on the slow-query log: a traced span whose
// duration is at least floor — or, when floor is zero, at least its own
// histogram's current p99 bucket bound (after slowMinCount samples) —
// is recorded with its trace ID. capacity <= 0 disables the log.
func (r *Registry) EnableSlowLog(capacity int, floor time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if capacity <= 0 {
		r.slow = nil
		return
	}
	r.slow = &slowLog{buf: make([]SlowEntry, capacity), floor: floor}
}

// SlowQueries returns the slow-query log entries, oldest first.
func (r *Registry) SlowQueries() []SlowEntry {
	r.mu.Lock()
	l := r.slow
	r.mu.Unlock()
	if l == nil {
		return nil
	}
	return l.entries()
}

// TraceSpan is a started span carrying trace identity. Like Span it must
// be ended exactly once; End records the duration into the backing
// histogram (with a trace-ID exemplar), the event log, the trace store
// and — for tail samples — the slow-query log.
type TraceSpan struct {
	reg    *Registry
	hist   *Histogram
	name   string
	reqID  string
	start  time.Time
	ctx    SpanContext
	parent string
	attrs  []Attr
}

// StartRootSpan starts a new trace rooted at a span named name. When
// tracing is disabled on the registry the returned span degrades to
// plain Span behaviour (histogram + event log only) and its Context is
// invalid.
func (r *Registry) StartRootSpan(name string, h *Histogram, attrs ...Attr) *TraceSpan {
	s := &TraceSpan{reg: r, hist: h, name: name, start: time.Now(), attrs: attrs}
	if r.TracingEnabled() {
		s.ctx = SpanContext{TraceID: NewTraceID(), SpanID: newSpanID()}
	}
	return s
}

// StartChildSpan starts a span under parent. An invalid parent (or
// tracing disabled) degrades to plain Span behaviour.
func (r *Registry) StartChildSpan(name string, parent SpanContext, h *Histogram, attrs ...Attr) *TraceSpan {
	s := &TraceSpan{reg: r, hist: h, name: name, start: time.Now(), attrs: attrs}
	if parent.Valid() && r.TracingEnabled() {
		s.ctx = SpanContext{TraceID: parent.TraceID, SpanID: newSpanID()}
		s.parent = parent.SpanID
	}
	return s
}

// Context returns the span's trace identity (invalid when untraced).
func (s *TraceSpan) Context() SpanContext { return s.ctx }

// SetRequestID attaches the transport request ID (propagated alongside
// the trace context) to the span.
func (s *TraceSpan) SetRequestID(id string) { s.reqID = id }

// AddAttr appends attributes to the span (not safe for concurrent use
// with End; attach from the owning goroutine only).
func (s *TraceSpan) AddAttr(attrs ...Attr) { s.attrs = append(s.attrs, attrs...) }

// End stops the span, records it everywhere it belongs and returns the
// measured duration. A nil or zero-value span is a no-op.
func (s *TraceSpan) End() time.Duration {
	if s == nil || s.reg == nil {
		return 0
	}
	d := time.Since(s.start)
	if s.hist != nil {
		if s.ctx.Valid() {
			s.hist.ObserveTraced(d.Seconds(), s.ctx.TraceID)
		} else {
			s.hist.Observe(d.Seconds())
		}
	}
	s.reg.mu.Lock()
	events, traces, slow := s.reg.events, s.reg.traces, s.reg.slow
	s.reg.mu.Unlock()
	if events != nil {
		events.append(Event{
			Name:          s.name,
			StartUnixNano: s.start.UnixNano(),
			DurationNanos: int64(d),
			TraceID:       s.ctx.TraceID,
			SpanID:        s.ctx.SpanID,
			RequestID:     s.reqID,
		})
	}
	if traces != nil && s.ctx.Valid() {
		traces.add(SpanRecord{
			Name:          s.name,
			TraceID:       s.ctx.TraceID,
			SpanID:        s.ctx.SpanID,
			ParentID:      s.parent,
			RequestID:     s.reqID,
			StartUnixNano: s.start.UnixNano(),
			DurationNanos: int64(d),
			Attrs:         s.attrs,
		})
	}
	if slow != nil && s.ctx.Valid() {
		slow.consider(s.hist, s.name, s.ctx, s.reqID, s.start, d)
	}
	return d
}

// SortSpans orders spans topologically for display: by start time, with
// ties broken by span ID, which places parents before their children
// (a child starts after its parent).
func SortSpans(spans []SpanRecord) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].StartUnixNano != spans[j].StartUnixNano {
			return spans[i].StartUnixNano < spans[j].StartUnixNano
		}
		return spans[i].SpanID < spans[j].SpanID
	})
}
