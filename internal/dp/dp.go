// Package dp implements the differential-privacy machinery of CS-F-LTR.
//
// Section IV-B (Step 3) of the paper perturbs every sketch lookup with a
// single Laplace noise draw Ñ ~ Lap(1/ε) before it leaves the document
// owner, and Theorem 1 shows the resulting point-query mechanism satisfies
// ε-DP in the sketch-specific sense of Definition 4. This package provides
// the Laplace mechanism, a discrete (two-sided geometric) variant, and a
// per-peer privacy accountant that tracks cumulative budget under
// sequential composition.
//
// Conventions: following the paper's Figure 6a we "abuse ε = 0 to
// represent the case that DP is not applied"; Disabled() returns a
// mechanism that adds no noise, and NewLaplace rejects ε <= 0 so the two
// cases cannot be confused silently.
package dp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
)

// Errors returned by this package.
var (
	ErrBadEpsilon     = errors.New("dp: epsilon must be positive")
	ErrBadSensitivity = errors.New("dp: sensitivity must be positive")
	ErrBudgetExceeded = errors.New("dp: privacy budget exceeded")
)

// Mechanism perturbs a numeric query answer to provide differential
// privacy. Implementations are safe for concurrent use only if their
// underlying random source is.
type Mechanism interface {
	// Perturb returns x plus mechanism noise.
	Perturb(x float64) float64
	// Sample returns one noise draw (Perturb(0)).
	Sample() float64
	// Epsilon returns the per-invocation privacy cost (0 for Disabled).
	Epsilon() float64
}

// Laplace is the Laplace mechanism with scale sensitivity/epsilon.
type Laplace struct {
	epsilon float64
	scale   float64
	rng     *rand.Rand
}

// NewLaplace builds a Laplace mechanism for a query with the given
// sensitivity and privacy budget epsilon. The paper's TF scheme uses
// sensitivity 1 (one term changes one counter by one, up to the hash
// collision argument of Theorem 1). rng must not be nil.
func NewLaplace(epsilon, sensitivity float64, rng *rand.Rand) (*Laplace, error) {
	if epsilon <= 0 || math.IsNaN(epsilon) || math.IsInf(epsilon, 0) {
		return nil, fmt.Errorf("%w (got %v)", ErrBadEpsilon, epsilon)
	}
	if sensitivity <= 0 || math.IsNaN(sensitivity) || math.IsInf(sensitivity, 0) {
		return nil, fmt.Errorf("%w (got %v)", ErrBadSensitivity, sensitivity)
	}
	if rng == nil {
		return nil, errors.New("dp: rng must not be nil")
	}
	return &Laplace{epsilon: epsilon, scale: sensitivity / epsilon, rng: rng}, nil
}

// Scale returns the Laplace scale parameter b = sensitivity/epsilon.
func (l *Laplace) Scale() float64 { return l.scale }

// Epsilon returns the per-invocation privacy cost.
func (l *Laplace) Epsilon() float64 { return l.epsilon }

// Sample draws one Lap(0, b) variate by inverse-CDF sampling.
func (l *Laplace) Sample() float64 { return SampleLaplace(l.rng, l.scale) }

// Perturb returns x + Lap(0, b).
func (l *Laplace) Perturb(x float64) float64 { return x + l.Sample() }

// SampleLaplace draws a Laplace(0, scale) variate from rng using the
// inverse CDF: for u ~ U(-1/2, 1/2), x = -b * sign(u) * ln(1 - 2|u|).
func SampleLaplace(rng *rand.Rand, scale float64) float64 {
	u := rng.Float64() - 0.5
	if u >= 0 {
		return -scale * math.Log(1-2*u)
	}
	return scale * math.Log(1+2*u)
}

// Geometric is the two-sided geometric (discrete Laplace) mechanism, the
// integer-valued analogue of Laplace. Useful when perturbed counters must
// remain integers; it satisfies ε-DP for sensitivity-1 counting queries.
type Geometric struct {
	epsilon float64
	alpha   float64 // e^{-epsilon/sensitivity}
	rng     *rand.Rand
}

// NewGeometric builds a two-sided geometric mechanism.
func NewGeometric(epsilon, sensitivity float64, rng *rand.Rand) (*Geometric, error) {
	if epsilon <= 0 || math.IsNaN(epsilon) || math.IsInf(epsilon, 0) {
		return nil, fmt.Errorf("%w (got %v)", ErrBadEpsilon, epsilon)
	}
	if sensitivity <= 0 {
		return nil, fmt.Errorf("%w (got %v)", ErrBadSensitivity, sensitivity)
	}
	if rng == nil {
		return nil, errors.New("dp: rng must not be nil")
	}
	return &Geometric{epsilon: epsilon, alpha: math.Exp(-epsilon / sensitivity), rng: rng}, nil
}

// Epsilon returns the per-invocation privacy cost.
func (g *Geometric) Epsilon() float64 { return g.epsilon }

// Sample draws an integer-valued two-sided geometric variate.
// Pr[X = k] = (1-alpha)/(1+alpha) * alpha^{|k|}.
func (g *Geometric) Sample() float64 {
	// Sample magnitude from a geometric distribution and a fair sign,
	// handling the double-counted zero by rejection.
	for {
		u := g.rng.Float64()
		// Geometric magnitude: smallest k >= 0 with 1-alpha^{k+1} > u.
		k := math.Floor(math.Log(1-u) / math.Log(g.alpha))
		if math.IsNaN(k) || k < 0 {
			k = 0
		}
		if g.rng.Intn(2) == 0 {
			return k
		}
		if k == 0 {
			continue // zero must not be drawn twice as often
		}
		return -k
	}
}

// Perturb returns x plus integer geometric noise.
func (g *Geometric) Perturb(x float64) float64 { return x + g.Sample() }

// disabled is the no-op mechanism standing in for "DP off" (ε = 0 in the
// paper's Figure 6a).
type disabled struct{}

// Disabled returns a Mechanism that adds no noise and reports Epsilon()==0.
func Disabled() Mechanism { return disabled{} }

func (disabled) Perturb(x float64) float64 { return x }
func (disabled) Sample() float64           { return 0 }
func (disabled) Epsilon() float64          { return 0 }

// ForEpsilon returns the mechanism the CS-F-LTR protocol uses at privacy
// budget eps: Disabled() when eps == 0 (the paper's convention) and a
// sensitivity-1 Laplace mechanism otherwise.
func ForEpsilon(eps float64, rng *rand.Rand) (Mechanism, error) {
	if eps == 0 {
		return Disabled(), nil
	}
	return NewLaplace(eps, 1, rng)
}

// Accountant tracks cumulative privacy spending per peer under sequential
// composition: total cost is the sum of per-query epsilons. It is safe for
// concurrent use.
type Accountant struct {
	mu      sync.Mutex
	budget  float64 // 0 means unlimited
	spent   map[string]float64
	replays map[string]int64
}

// NewAccountant creates an accountant with the given total per-peer
// budget. A budget of 0 means "track but never refuse".
func NewAccountant(budget float64) *Accountant {
	return &Accountant{
		budget:  budget,
		spent:   make(map[string]float64),
		replays: make(map[string]int64),
	}
}

// Spend records a query against peer costing eps, returning
// ErrBudgetExceeded (without recording) if it would overrun the budget.
func (a *Accountant) Spend(peer string, eps float64) error {
	if eps < 0 {
		return fmt.Errorf("%w: negative spend %v", ErrBadEpsilon, eps)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.budget > 0 && a.spent[peer]+eps > a.budget {
		return fmt.Errorf("%w: peer %q spent %.4f of %.4f, requested %.4f",
			ErrBudgetExceeded, peer, a.spent[peer], a.budget, eps)
	}
	a.spent[peer] += eps
	return nil
}

// Spent returns the cumulative epsilon spent against peer.
func (a *Accountant) Spent(peer string) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spent[peer]
}

// Replayed records that a previously released answer from peer was
// served again — the zero-spend replay path. Differential privacy is
// closed under post-processing: once a noisy answer has been released,
// re-serving those exact bytes (e.g. from the federated answer cache)
// reveals nothing further about peer's data, so the spend is zero.
// Replays are counted separately so experiments can report how much of
// the workload was answered without touching the budget.
func (a *Accountant) Replayed(peer string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.replays[peer]++
}

// Replays returns how many zero-spend replays were recorded for peer.
func (a *Accountant) Replays(peer string) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.replays[peer]
}

// PeerSpend is one peer's row in a Ledger snapshot.
type PeerSpend struct {
	Peer    string  `json:"peer"`
	Spent   float64 `json:"spent"`
	Replays int64   `json:"replays"`
}

// Ledger returns a consistent point-in-time snapshot of the accountant's
// per-peer state — every peer that has ever been spent against or
// replayed from, sorted by name. This is the reconciliation surface the
// federation's per-query audit records are checked against: summing the
// audit ledger's epsilon per peer must reproduce each row's Spent
// exactly (cache replays contribute zero).
func (a *Accountant) Ledger() []PeerSpend {
	a.mu.Lock()
	defer a.mu.Unlock()
	names := make(map[string]struct{}, len(a.spent))
	for p := range a.spent {
		names[p] = struct{}{}
	}
	for p := range a.replays {
		names[p] = struct{}{}
	}
	out := make([]PeerSpend, 0, len(names))
	for p := range names {
		out = append(out, PeerSpend{Peer: p, Spent: a.spent[p], Replays: a.replays[p]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// Remaining returns the unspent budget for peer, or +Inf when unlimited.
func (a *Accountant) Remaining(peer string) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.budget == 0 {
		return math.Inf(1)
	}
	r := a.budget - a.spent[peer]
	if r < 0 {
		r = 0
	}
	return r
}

// SequentialComposition returns the total epsilon of k sequential
// eps-DP queries — the accounting rule the Accountant applies.
func SequentialComposition(eps float64, k int) float64 {
	if k <= 0 || eps <= 0 {
		return 0
	}
	return float64(k) * eps
}

// AdvancedComposition returns the epsilon' such that k sequential eps-DP
// mechanisms are (epsilon', delta)-DP under the advanced composition
// theorem (Dwork, Rothblum, Vadhan):
//
//	eps' = eps*sqrt(2k ln(1/delta)) + k*eps*(e^eps - 1)
//
// For many small queries this is far tighter than k*eps; the protocol
// layer can use it to budget long-running federations. Returns +Inf for
// invalid inputs.
func AdvancedComposition(eps, delta float64, k int) float64 {
	if eps <= 0 || delta <= 0 || delta >= 1 || k <= 0 {
		return math.Inf(1)
	}
	kf := float64(k)
	return eps*math.Sqrt(2*kf*math.Log(1/delta)) + kf*eps*(math.Exp(eps)-1)
}

// QueriesWithinBudget returns the largest k such that k sequential
// eps-DP queries stay within totalEps under advanced composition at the
// given delta (simple binary search; 0 if even one query overruns).
func QueriesWithinBudget(eps, delta, totalEps float64) int {
	if eps <= 0 || totalEps <= 0 {
		return 0
	}
	lo, hi := 0, 1
	for AdvancedComposition(eps, delta, hi) <= totalEps {
		hi *= 2
		if hi > 1<<30 {
			break
		}
	}
	for lo < hi-1 {
		mid := (lo + hi) / 2
		if AdvancedComposition(eps, delta, mid) <= totalEps {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Peers returns the peers with recorded spending, sorted.
func (a *Accountant) Peers() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.spent))
	for p := range a.spent {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
