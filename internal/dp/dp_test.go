package dp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestNewLaplaceValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name        string
		eps, sens   float64
		rng         *rand.Rand
		wantErrType error
	}{
		{"ok", 0.5, 1, rng, nil},
		{"zero eps", 0, 1, rng, ErrBadEpsilon},
		{"negative eps", -1, 1, rng, ErrBadEpsilon},
		{"nan eps", math.NaN(), 1, rng, ErrBadEpsilon},
		{"inf eps", math.Inf(1), 1, rng, ErrBadEpsilon},
		{"zero sensitivity", 1, 0, rng, ErrBadSensitivity},
		{"negative sensitivity", 1, -2, rng, ErrBadSensitivity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewLaplace(tc.eps, tc.sens, tc.rng)
			if tc.wantErrType == nil && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if tc.wantErrType != nil && !errors.Is(err, tc.wantErrType) {
				t.Fatalf("want %v, got %v", tc.wantErrType, err)
			}
		})
	}
	if _, err := NewLaplace(1, 1, nil); err == nil {
		t.Fatal("nil rng should be rejected")
	}
}

func TestLaplaceScale(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l, err := NewLaplace(0.5, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if l.Scale() != 2 {
		t.Fatalf("scale = %v, want 2 (sensitivity/epsilon)", l.Scale())
	}
	if l.Epsilon() != 0.5 {
		t.Fatalf("epsilon = %v, want 0.5", l.Epsilon())
	}
}

// TestLaplaceMoments checks the empirical mean and variance of the sampler
// against the analytic values E=0, Var=2b^2.
func TestLaplaceMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const b = 2.0
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := SampleLaplace(rng, b)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("empirical mean %f too far from 0", mean)
	}
	want := 2 * b * b
	if math.Abs(variance-want)/want > 0.05 {
		t.Fatalf("empirical variance %f, want ~%f", variance, want)
	}
}

// TestLaplaceTailShape checks Pr[|X| > b*ln 2] ~ 1/2 (the Laplace median
// of |X| is b*ln 2), pinning the inverse-CDF sampler to the right
// distribution rather than just the right moments.
func TestLaplaceTailShape(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const b = 1.5
	const n = 100000
	above := 0
	threshold := b * math.Ln2
	for i := 0; i < n; i++ {
		if math.Abs(SampleLaplace(rng, b)) > threshold {
			above++
		}
	}
	p := float64(above) / n
	if math.Abs(p-0.5) > 0.01 {
		t.Fatalf("Pr[|X|>b ln2] = %f, want ~0.5", p)
	}
}

func TestLaplacePerturb(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l, _ := NewLaplace(1, 1, rng)
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += l.Perturb(10)
	}
	if math.Abs(sum/n-10) > 0.05 {
		t.Fatalf("Perturb(10) mean %f, want ~10", sum/n)
	}
}

// TestLaplaceDPRatio statistically verifies the core ε-DP inequality for a
// sensitivity-1 query: the histogram ratio of Perturb(0) vs Perturb(1)
// should never exceed e^ε by a wide margin.
func TestLaplaceDPRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	eps := 0.8
	l, _ := NewLaplace(eps, 1, rng)
	const n = 400000
	const bins = 40
	const lo, hi = -5.0, 6.0
	h0 := make([]float64, bins)
	h1 := make([]float64, bins)
	binOf := func(x float64) int {
		b := int((x - lo) / (hi - lo) * bins)
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		return b
	}
	for i := 0; i < n; i++ {
		h0[binOf(l.Perturb(0))]++
		h1[binOf(l.Perturb(1))]++
	}
	bound := math.Exp(eps) * 1.25 // sampling slack
	for i := 0; i < bins; i++ {
		if h0[i] < 200 || h1[i] < 200 {
			continue // skip bins with too little mass for a stable ratio
		}
		r := h0[i] / h1[i]
		if r < 1 {
			r = 1 / r
		}
		if r > bound {
			t.Fatalf("bin %d: probability ratio %f exceeds e^eps=%f", i, r, math.Exp(eps))
		}
	}
}

func TestGeometricMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	eps := 1.0
	g, err := NewGeometric(eps, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := g.Sample()
		if x != math.Trunc(x) {
			t.Fatalf("geometric sample %v is not an integer", x)
		}
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("geometric mean %f, want ~0", mean)
	}
	// Var = 2*alpha/(1-alpha)^2 for alpha = e^{-eps}.
	alpha := math.Exp(-eps)
	want := 2 * alpha / ((1 - alpha) * (1 - alpha))
	if math.Abs(variance-want)/want > 0.05 {
		t.Fatalf("geometric variance %f, want ~%f", variance, want)
	}
}

func TestGeometricValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewGeometric(0, 1, rng); !errors.Is(err, ErrBadEpsilon) {
		t.Fatal("zero epsilon should be rejected")
	}
	if _, err := NewGeometric(1, 0, rng); !errors.Is(err, ErrBadSensitivity) {
		t.Fatal("zero sensitivity should be rejected")
	}
	if _, err := NewGeometric(1, 1, nil); err == nil {
		t.Fatal("nil rng should be rejected")
	}
}

func TestDisabled(t *testing.T) {
	m := Disabled()
	if m.Perturb(3.5) != 3.5 || m.Sample() != 0 || m.Epsilon() != 0 {
		t.Fatal("Disabled mechanism must be a no-op")
	}
}

func TestForEpsilon(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, err := ForEpsilon(0, rng)
	if err != nil || m.Epsilon() != 0 {
		t.Fatalf("eps=0 should give Disabled, got %v %v", m, err)
	}
	m, err = ForEpsilon(0.5, rng)
	if err != nil || m.Epsilon() != 0.5 {
		t.Fatalf("eps=0.5 should give Laplace(0.5), got %v %v", m, err)
	}
	if _, err := ForEpsilon(-1, rng); err == nil {
		t.Fatal("negative epsilon should error")
	}
}

func TestAccountant(t *testing.T) {
	a := NewAccountant(1.0)
	if err := a.Spend("partyB", 0.4); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend("partyB", 0.4); err != nil {
		t.Fatal(err)
	}
	if got := a.Spent("partyB"); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("spent = %v, want 0.8", got)
	}
	if got := a.Remaining("partyB"); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("remaining = %v, want 0.2", got)
	}
	if err := a.Spend("partyB", 0.4); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("expected ErrBudgetExceeded, got %v", err)
	}
	// Refused spends must not be recorded.
	if got := a.Spent("partyB"); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("failed spend was recorded: %v", got)
	}
	// Other peers are independent.
	if err := a.Spend("partyC", 0.9); err != nil {
		t.Fatal(err)
	}
	peers := a.Peers()
	if len(peers) != 2 || peers[0] != "partyB" || peers[1] != "partyC" {
		t.Fatalf("peers = %v", peers)
	}
	if err := a.Spend("partyC", -0.1); !errors.Is(err, ErrBadEpsilon) {
		t.Fatal("negative spend should be rejected")
	}
}

func TestAccountantUnlimited(t *testing.T) {
	a := NewAccountant(0)
	for i := 0; i < 100; i++ {
		if err := a.Spend("p", 10); err != nil {
			t.Fatal(err)
		}
	}
	if !math.IsInf(a.Remaining("p"), 1) {
		t.Fatal("unlimited accountant should report +Inf remaining")
	}
	if a.Spent("p") != 1000 {
		t.Fatalf("spent = %v, want 1000", a.Spent("p"))
	}
}

func TestAccountantConcurrent(t *testing.T) {
	a := NewAccountant(0)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				_ = a.Spend("p", 0.001)
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if math.Abs(a.Spent("p")-8.0) > 1e-9 {
		t.Fatalf("concurrent spends lost updates: %v", a.Spent("p"))
	}
}

func TestSequentialComposition(t *testing.T) {
	if got := SequentialComposition(0.5, 4); got != 2 {
		t.Fatalf("SequentialComposition = %v", got)
	}
	if SequentialComposition(0.5, 0) != 0 || SequentialComposition(-1, 5) != 0 {
		t.Fatal("degenerate inputs should give 0")
	}
}

func TestAdvancedComposition(t *testing.T) {
	// For many small queries, advanced composition beats sequential.
	eps, delta := 0.1, 1e-6
	k := 1000
	adv := AdvancedComposition(eps, delta, k)
	seq := SequentialComposition(eps, k)
	if adv >= seq {
		t.Fatalf("advanced (%v) should beat sequential (%v) at k=%d", adv, seq, k)
	}
	// Hand check: 0.1*sqrt(2*1000*ln(1e6)) + 1000*0.1*(e^0.1-1).
	want := 0.1*math.Sqrt(2*1000*math.Log(1e6)) + 100*(math.Exp(0.1)-1)
	if math.Abs(adv-want) > 1e-9 {
		t.Fatalf("advanced = %v, want %v", adv, want)
	}
	// Invalid inputs.
	for _, bad := range []float64{AdvancedComposition(0, delta, k),
		AdvancedComposition(eps, 0, k), AdvancedComposition(eps, 1, k),
		AdvancedComposition(eps, delta, 0)} {
		if !math.IsInf(bad, 1) {
			t.Fatalf("invalid input should give +Inf, got %v", bad)
		}
	}
}

func TestQueriesWithinBudget(t *testing.T) {
	eps, delta, total := 0.1, 1e-6, 10.0
	k := QueriesWithinBudget(eps, delta, total)
	if k <= 0 {
		t.Fatal("budget should admit some queries")
	}
	if AdvancedComposition(eps, delta, k) > total {
		t.Fatalf("k=%d overruns the budget", k)
	}
	if AdvancedComposition(eps, delta, k+1) <= total {
		t.Fatalf("k=%d is not maximal", k)
	}
	// More queries than naive k*eps would allow.
	if k <= int(total/eps) {
		t.Fatalf("advanced budget (%d) should exceed the naive %d", k, int(total/eps))
	}
	if QueriesWithinBudget(0, delta, total) != 0 || QueriesWithinBudget(eps, delta, 0) != 0 {
		t.Fatal("degenerate inputs should give 0")
	}
	// Budget too small for even one query.
	if QueriesWithinBudget(5, delta, 0.1) != 0 {
		t.Fatal("tiny budget should admit zero queries")
	}
}

func BenchmarkSampleLaplace(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SampleLaplace(rng, 2)
	}
}
