package chaos

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestZeroProfileIsTransparent: with no profiles installed the injector
// must be a no-op — no sleeps, no faults.
func TestZeroProfileIsTransparent(t *testing.T) {
	in := New(1)
	in.setSleep(func(time.Duration) { t.Fatal("slept on a zero profile") })
	for i := 0; i < 100; i++ {
		if err := in.Intercept("A", "rtk", uint64(i)); err != nil {
			t.Fatalf("call %d: unexpected fault %v", i, err)
		}
	}
}

// TestDownAndPartition: hard failure modes fail every call with the
// right kind, and errors.Is recognises the ErrInjected class.
func TestDownAndPartition(t *testing.T) {
	in := New(1)
	in.SetProfile("dead", Profile{Down: true})
	in.SetProfile("cut", Profile{Partitioned: true})
	for party, kind := range map[string]string{"dead": KindDown, "cut": KindPartition} {
		err := in.Intercept(party, "rtk", 7)
		if err == nil {
			t.Fatalf("%s: no fault injected", party)
		}
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("%s: fault %v is not ErrInjected", party, err)
		}
		if got := FaultKind(err); got != kind {
			t.Fatalf("%s: kind %q, want %q", party, got, kind)
		}
	}
	// A party without a profile is untouched.
	if err := in.Intercept("alive", "rtk", 7); err != nil {
		t.Fatalf("unprofiled party got fault %v", err)
	}
}

// TestLatencyAndDefault: latency profiles sleep, the default applies to
// unprofiled parties, and explicit profiles win over the default.
func TestLatencyAndDefault(t *testing.T) {
	in := New(1)
	var slept []time.Duration
	in.setSleep(func(d time.Duration) { slept = append(slept, d) })
	in.SetDefault(Profile{Latency: 5 * time.Millisecond})
	in.SetProfile("fast", Profile{Latency: time.Millisecond})
	if err := in.Intercept("other", "rtk", 1); err != nil {
		t.Fatal(err)
	}
	if err := in.Intercept("fast", "rtk", 1); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{5 * time.Millisecond, time.Millisecond}
	if len(slept) != 2 || slept[0] != want[0] || slept[1] != want[1] {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	if got := in.ProfileFor("other").Latency; got != 5*time.Millisecond {
		t.Fatalf("ProfileFor(other).Latency = %v", got)
	}
	if got := in.PartyProfile("other"); !got.zero() {
		t.Fatalf("PartyProfile(other) = %+v, want zero", got)
	}
}

// TestErrorRateDeterminism: the same seed must make identical fault
// decisions for the same call sequence, and attempt counters must make
// repeated identical calls draw independently (≈rate overall).
func TestErrorRateDeterminism(t *testing.T) {
	run := func(seed uint64) []bool {
		in := New(seed)
		in.SetProfile("flaky", Profile{ErrorRate: 0.3})
		out := make([]bool, 400)
		for i := range out {
			// 40 logical calls, each retried 10 times.
			out[i] = in.Intercept("flaky", "rtk", uint64(i%40)) != nil
		}
		return out
	}
	a, b := run(99), run(99)
	faults := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: run A fault=%v, run B fault=%v", i, a[i], b[i])
		}
		if a[i] {
			faults++
		}
	}
	if faults < 60 || faults > 180 {
		t.Fatalf("30%% error rate produced %d/400 faults", faults)
	}
	// A different seed gives a different (but valid) pattern.
	c := run(100)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seeds 99 and 100 made identical decisions")
	}
}

// TestResetAttemptsReplays: after ResetAttempts the same call sequence
// must replay the exact fault pattern.
func TestResetAttemptsReplays(t *testing.T) {
	in := New(7)
	in.SetProfile("flaky", Profile{ErrorRate: 0.5, TimeoutRate: 0.2})
	seq := func() []string {
		out := make([]string, 60)
		for i := range out {
			out[i] = FaultKind(in.Intercept("flaky", "tf", uint64(i%12)))
		}
		return out
	}
	first := seq()
	in.ResetAttempts()
	second := seq()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("call %d after reset: %q, want %q", i, second[i], first[i])
		}
	}
}

// TestOnFaultHook: every injected fault reaches the hook with its party
// and kind.
func TestOnFaultHook(t *testing.T) {
	in := New(1)
	in.SetProfile("dead", Profile{Down: true})
	var mu sync.Mutex
	counts := map[string]int{}
	in.SetOnFault(func(party, kind string) {
		mu.Lock()
		counts[party+"/"+kind]++
		mu.Unlock()
	})
	for i := 0; i < 3; i++ {
		if err := in.Intercept("dead", "rtk", uint64(i)); err == nil {
			t.Fatal("no fault")
		}
	}
	if counts["dead/"+KindDown] != 3 {
		t.Fatalf("hook counts = %v", counts)
	}
}

// TestConcurrentIntercept: concurrent calls against one injector are
// race-free and every hard fault still fires (run under -race).
func TestConcurrentIntercept(t *testing.T) {
	in := New(3)
	in.SetProfile("dead", Profile{Down: true})
	in.SetProfile("flaky", Profile{ErrorRate: 0.5})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := in.Intercept("dead", "rtk", uint64(i)); err == nil {
					t.Error("dead party call succeeded")
					return
				}
				in.Intercept("flaky", "rtk", uint64(i))
			}
		}(g)
	}
	wg.Wait()
}

// TestJitterBounded: realized jitter stays within [Latency, Latency+Jitter).
func TestJitterBounded(t *testing.T) {
	in := New(11)
	var slept []time.Duration
	in.setSleep(func(d time.Duration) { slept = append(slept, d) })
	base, jit := 2*time.Millisecond, 4*time.Millisecond
	in.SetProfile("far", Profile{Latency: base, Jitter: jit})
	for i := 0; i < 50; i++ {
		if err := in.Intercept("far", "rtk", uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(slept) != 50 {
		t.Fatalf("%d sleeps, want 50", len(slept))
	}
	varied := false
	for _, d := range slept {
		if d < base || d >= base+jit {
			t.Fatalf("jittered latency %v outside [%v, %v)", d, base, base+jit)
		}
		if d != slept[0] {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter draws were all identical")
	}
}
