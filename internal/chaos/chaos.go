// Package chaos is a deterministic, seeded fault-injection layer for the
// federation's relay paths. A production cross-silo federation must keep
// answering queries when silos are slow, flaky, partitioned or dead; this
// package makes those regimes reproducible so the resilience machinery
// (package resilience, the degraded-mode federated search) can be proven
// under test instead of asserted.
//
// Every party gets a Profile: a base link latency plus jitter, an error
// rate, a timeout rate, and hard failure modes (Down, Partitioned). Fault
// decisions are a pure function of (injector seed, party, op, call
// content, attempt number) — not of wall-clock time, goroutine
// scheduling or map order — so a run replays bit-identically from a
// single seed: the same query sequence experiences the same faults no
// matter how the fan-out is scheduled, and a retry of the same call is a
// fresh (but still deterministic) draw.
package chaos

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Fault kinds, used as the bounded `kind` metric label and carried by
// injected errors.
const (
	KindError     = "error"     // transient transport error
	KindTimeout   = "timeout"   // call timed out in flight
	KindDown      = "down"      // party process is dead
	KindPartition = "partition" // party unreachable (network partition)
)

// ErrInjected is the base class of every injected fault;
// errors.Is(err, chaos.ErrInjected) identifies chaos-made failures.
var ErrInjected = errors.New("chaos: injected fault")

// Fault is one injected failure. It unwraps to ErrInjected.
type Fault struct {
	Party string
	Op    string
	Kind  string
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("chaos: injected %s fault on %s call to party %q", f.Kind, f.Op, f.Party)
}

// Is reports membership in the ErrInjected class.
func (f *Fault) Is(target error) bool { return target == ErrInjected }

// FaultKind returns the injected fault kind of err ("" if err is not an
// injected fault).
func FaultKind(err error) string {
	var f *Fault
	if errors.As(err, &f) {
		return f.Kind
	}
	return ""
}

// Profile is one party's fault configuration. The zero Profile is a
// perfect link: no latency, no faults.
type Profile struct {
	// Latency is the fixed simulated round trip added to every call.
	Latency time.Duration
	// Jitter is the maximum extra latency; the realized jitter is a
	// deterministic draw in [0, Jitter) per call.
	Jitter time.Duration
	// ErrorRate is the probability in [0, 1] that a call fails with a
	// transient error instead of reaching the party.
	ErrorRate float64
	// TimeoutRate is the probability in [0, 1] that a call is dropped
	// in flight and surfaces as a timeout.
	TimeoutRate float64
	// Down simulates a dead silo: every call fails.
	Down bool
	// Partitioned simulates a network partition: every call fails as
	// unreachable.
	Partitioned bool
}

// zero reports whether the profile injects nothing at all.
func (p Profile) zero() bool { return p == Profile{} }

// deterministic reports whether per-call draws are needed.
func (p Profile) needsDraws() bool {
	return p.Jitter > 0 || p.ErrorRate > 0 || p.TimeoutRate > 0
}

// attemptKey identifies one logical call for attempt numbering: retries
// of the same (party, op, content) advance the attempt counter, so a
// retry is a fresh deterministic draw rather than a guaranteed repeat of
// the first attempt's fate.
type attemptKey struct {
	party   string
	op      string
	content uint64
}

// Injector holds the per-party fault profiles and the seed that makes
// every decision reproducible. Safe for concurrent use.
type Injector struct {
	seed uint64

	mu       sync.RWMutex
	def      Profile
	profiles map[string]Profile
	attempts map[attemptKey]uint64
	onFault  func(party, kind string)

	// sleep is swappable so tests can assert latency without waiting.
	sleep func(time.Duration)
}

// New creates an injector with no profiles; until a profile is set it is
// a transparent no-op.
func New(seed uint64) *Injector {
	return &Injector{
		seed:     seed,
		profiles: make(map[string]Profile),
		attempts: make(map[attemptKey]uint64),
		sleep:    time.Sleep,
	}
}

// Seed returns the injector's seed.
func (in *Injector) Seed() uint64 { return in.seed }

// SetProfile installs (or replaces) one party's fault profile.
func (in *Injector) SetProfile(party string, p Profile) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.profiles[party] = p
}

// SetDefault installs the profile applied to parties without an explicit
// one — e.g. a uniform simulated WAN round trip for the whole roster.
func (in *Injector) SetDefault(p Profile) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.def = p
}

// Default returns the default profile.
func (in *Injector) Default() Profile {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.def
}

// PartyProfile returns the profile explicitly set for party (zero if
// none), without falling back to the default.
func (in *Injector) PartyProfile(party string) Profile {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.profiles[party]
}

// ProfileFor returns the effective profile for party: the explicit one
// if set, the default otherwise.
func (in *Injector) ProfileFor(party string) Profile {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if p, ok := in.profiles[party]; ok {
		return p
	}
	return in.def
}

// ResetAttempts forgets the per-call attempt counters, so the next run
// of the same query sequence replays the same faults from the start.
func (in *Injector) ResetAttempts() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.attempts = make(map[attemptKey]uint64)
}

// SetOnFault installs a hook invoked for every injected fault (e.g. the
// server's chaos fault counters). The hook must be fast and must not
// call back into the injector.
func (in *Injector) SetOnFault(fn func(party, kind string)) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.onFault = fn
}

// setSleep swaps the latency sleeper (tests).
func (in *Injector) setSleep(fn func(time.Duration)) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.sleep = fn
}

// Intercept applies party's profile to one call: it sleeps the simulated
// link latency and returns the injected fault, if any. op names the call
// ("rtk", "tf", "docmeta", ...); content identifies the request payload
// (e.g. a hash of the query columns) so that the fault decision depends
// on the logical call, not on arrival order — this is what makes runs
// replay bit-identically under a concurrent fan-out.
func (in *Injector) Intercept(party, op string, content uint64) error {
	in.mu.RLock()
	p, ok := in.profiles[party]
	if !ok {
		p = in.def
	}
	sleep, onFault := in.sleep, in.onFault
	in.mu.RUnlock()
	if p.zero() {
		return nil
	}

	var h uint64
	if p.needsDraws() {
		h = in.callHash(party, op, content)
	}
	lat := p.Latency
	if p.Jitter > 0 {
		lat += time.Duration(float64(p.Jitter) * unitFloat(splitmix64(h+1)))
	}
	if lat > 0 {
		sleep(lat)
	}

	kind := ""
	switch {
	case p.Down:
		kind = KindDown
	case p.Partitioned:
		kind = KindPartition
	case p.ErrorRate > 0 && unitFloat(splitmix64(h+2)) < p.ErrorRate:
		kind = KindError
	case p.TimeoutRate > 0 && unitFloat(splitmix64(h+3)) < p.TimeoutRate:
		kind = KindTimeout
	}
	if kind == "" {
		return nil
	}
	if onFault != nil {
		onFault(party, kind)
	}
	return &Fault{Party: party, Op: op, Kind: kind}
}

// callHash mixes the call identity and its attempt number into one
// deterministic 64-bit value. The attempt counter advances under the
// lock, so the n-th occurrence of a logical call always gets draw n.
func (in *Injector) callHash(party, op string, content uint64) uint64 {
	k := attemptKey{party: party, op: op, content: content}
	in.mu.Lock()
	n := in.attempts[k]
	in.attempts[k] = n + 1
	in.mu.Unlock()
	h := in.seed
	h = mixString(h, party)
	h = mixString(h, op)
	h = splitmix64(h ^ content)
	return splitmix64(h ^ n)
}

// mixString folds s into h FNV-1a style, then scrambles.
func mixString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return splitmix64(h)
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed PRF step.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unitFloat maps a 64-bit value to [0, 1).
func unitFloat(x uint64) float64 { return float64(x>>11) / float64(1<<53) }
