// Package zipf models the skewed term-frequency distributions that the
// CS-F-LTR paper assumes throughout its analysis.
//
// The accuracy bound of Theorem 2 uses the residual second moment
// F2^Res under a Zipf's-law assumption, and the RTK-Sketch cover-rate
// bound of Theorem 4 assumes term counts c_i = L/(i^q). This package
// provides finite Zipf (and Zipf-Mandelbrot) distributions with exact
// probabilities and CDF-based sampling, a log-log regression exponent
// fitter, and the residual-F2 quantities used by the theory-check tests
// and by the synthetic corpus generator.
package zipf

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Errors returned by this package.
var (
	ErrBadSize     = errors.New("zipf: support size must be positive")
	ErrBadExponent = errors.New("zipf: exponent must be positive")
	ErrBadShift    = errors.New("zipf: Mandelbrot shift must be non-negative")
)

// Distribution is a finite Zipf-Mandelbrot distribution over ranks
// 1..N with probability proportional to 1/(rank+Q)^S. Q = 0 gives the
// classic Zipf distribution. Immutable after construction; safe for
// concurrent sampling as long as each goroutine uses its own *rand.Rand.
type Distribution struct {
	n    int
	s    float64
	q    float64
	norm float64   // generalized harmonic normalizer
	cdf  []float64 // cdf[i] = Pr[rank <= i+1]
}

// New constructs a classic Zipf distribution over ranks 1..n with
// exponent s.
func New(n int, s float64) (*Distribution, error) {
	return NewMandelbrot(n, s, 0)
}

// NewMandelbrot constructs a Zipf-Mandelbrot distribution over ranks
// 1..n with exponent s and shift q.
func NewMandelbrot(n int, s, q float64) (*Distribution, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w (got %d)", ErrBadSize, n)
	}
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("%w (got %v)", ErrBadExponent, s)
	}
	if q < 0 || math.IsNaN(q) || math.IsInf(q, 0) {
		return nil, fmt.Errorf("%w (got %v)", ErrBadShift, q)
	}
	d := &Distribution{n: n, s: s, q: q}
	d.cdf = make([]float64, n)
	acc := 0.0
	for i := 1; i <= n; i++ {
		acc += math.Pow(float64(i)+q, -s)
		d.cdf[i-1] = acc
	}
	d.norm = acc
	for i := range d.cdf {
		d.cdf[i] /= acc
	}
	d.cdf[n-1] = 1 // guard against rounding
	return d, nil
}

// MustNew is New that panics on error, for constant parameters.
func MustNew(n int, s float64) *Distribution {
	d, err := New(n, s)
	if err != nil {
		panic(err)
	}
	return d
}

// N returns the support size.
func (d *Distribution) N() int { return d.n }

// S returns the exponent.
func (d *Distribution) S() float64 { return d.s }

// Prob returns Pr[rank]; rank must be in [1, N].
func (d *Distribution) Prob(rank int) float64 {
	if rank < 1 || rank > d.n {
		return 0
	}
	return math.Pow(float64(rank)+d.q, -d.s) / d.norm
}

// Sample draws a rank in [1, N] by binary search on the CDF.
func (d *Distribution) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(d.cdf, u) + 1
}

// ExpectedCounts returns the expected count of each rank when total
// items are drawn: total * Prob(rank). Used by the Theorem 4 tests to
// build the idealized count profile c_i = L / i^q.
func (d *Distribution) ExpectedCounts(total float64) []float64 {
	out := make([]float64, d.n)
	for i := 1; i <= d.n; i++ {
		out[i-1] = total * d.Prob(i)
	}
	return out
}

// FitExponent estimates the Zipf exponent from an observed frequency
// vector by least-squares regression of log f on log rank. Frequencies
// are sorted descending first; zero entries are skipped. Returns 0 when
// fewer than two positive frequencies exist.
func FitExponent(freqs []float64) float64 {
	sorted := append([]float64(nil), freqs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	var xs, ys []float64
	for i, f := range sorted {
		if f <= 0 {
			break
		}
		xs = append(xs, math.Log(float64(i+1)))
		ys = append(ys, math.Log(f))
	}
	if len(xs) < 2 {
		return 0
	}
	// slope of ordinary least squares; Zipf exponent is -slope.
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	slope := (n*sxy - sx*sy) / den
	return -slope
}

// F2 returns the second frequency moment sum f_i^2 of a frequency vector.
func F2(freqs []float64) float64 {
	var s float64
	for _, f := range freqs {
		s += f * f
	}
	return s
}

// ResidualF2 returns the residual second moment after removing the r-1
// heaviest entries: sum over the frequencies ranked r..n (1-indexed ranks,
// matching F2^Res = sum_{r<=k} f_k^2 in Theorem 2 of the paper).
func ResidualF2(freqs []float64, r int) float64 {
	if r <= 1 {
		return F2(freqs)
	}
	sorted := append([]float64(nil), freqs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	var s float64
	for i := r - 1; i < len(sorted); i++ {
		s += sorted[i] * sorted[i]
	}
	return s
}

// ResidualF2Bound returns the paper's closed-form Zipf bound on the
// residual second moment, F2^Res <= cz^2 (r-1)^{1-2ζ} / (2ζ-1), valid for
// ζ > 1/2 and r >= 2 when f_i = cz / i^ζ. Returns +Inf outside that range.
func ResidualF2Bound(cz, zeta float64, r int) float64 {
	if zeta <= 0.5 || r < 2 {
		return math.Inf(1)
	}
	return cz * cz * math.Pow(float64(r-1), 1-2*zeta) / (2*zeta - 1)
}
