package zipf

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name    string
		n       int
		s, q    float64
		wantErr error
	}{
		{"ok", 100, 1.0, 0, nil},
		{"ok mandelbrot", 100, 1.2, 2.7, nil},
		{"zero n", 0, 1, 0, ErrBadSize},
		{"negative n", -5, 1, 0, ErrBadSize},
		{"zero s", 10, 0, 0, ErrBadExponent},
		{"negative s", 10, -1, 0, ErrBadExponent},
		{"nan s", 10, math.NaN(), 0, ErrBadExponent},
		{"negative q", 10, 1, -1, ErrBadShift},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewMandelbrot(tc.n, tc.s, tc.q)
			if tc.wantErr == nil && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("want %v, got %v", tc.wantErr, err)
			}
		})
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic on bad input")
		}
	}()
	MustNew(0, 1)
}

func TestProbSumsToOne(t *testing.T) {
	for _, s := range []float64{0.5, 1.0, 1.5, 2.0} {
		d := MustNew(500, s)
		sum := 0.0
		for r := 1; r <= d.N(); r++ {
			sum += d.Prob(r)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("s=%v: probabilities sum to %v", s, sum)
		}
	}
}

func TestProbMonotoneDecreasing(t *testing.T) {
	d := MustNew(200, 1.05)
	for r := 2; r <= d.N(); r++ {
		if d.Prob(r) > d.Prob(r-1) {
			t.Fatalf("Prob not decreasing at rank %d", r)
		}
	}
}

func TestProbOutOfRange(t *testing.T) {
	d := MustNew(10, 1)
	if d.Prob(0) != 0 || d.Prob(11) != 0 || d.Prob(-3) != 0 {
		t.Fatal("out-of-range ranks must have probability 0")
	}
}

func TestSampleInRange(t *testing.T) {
	d := MustNew(50, 1.1)
	rng := rand.New(rand.NewSource(1))
	check := func(_ uint8) bool {
		r := d.Sample(rng)
		return r >= 1 && r <= 50
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestSampleMatchesProb compares empirical frequencies of the sampler with
// the analytic probabilities for the head of the distribution.
func TestSampleMatchesProb(t *testing.T) {
	d := MustNew(1000, 1.05)
	rng := rand.New(rand.NewSource(42))
	const n = 400000
	counts := make([]int, d.N()+1)
	for i := 0; i < n; i++ {
		counts[d.Sample(rng)]++
	}
	for r := 1; r <= 10; r++ {
		got := float64(counts[r]) / n
		want := d.Prob(r)
		if math.Abs(got-want)/want > 0.05 {
			t.Fatalf("rank %d: empirical %f vs analytic %f", r, got, want)
		}
	}
}

func TestFitExponentRecovers(t *testing.T) {
	for _, s := range []float64{0.8, 1.0, 1.3} {
		// Build an exact Zipf frequency vector and fit it.
		freqs := make([]float64, 200)
		for i := range freqs {
			freqs[i] = 1000 * math.Pow(float64(i+1), -s)
		}
		got := FitExponent(freqs)
		if math.Abs(got-s) > 0.01 {
			t.Fatalf("s=%v: fitted %v", s, got)
		}
	}
}

func TestFitExponentDegenerate(t *testing.T) {
	if FitExponent(nil) != 0 {
		t.Fatal("empty input should fit 0")
	}
	if FitExponent([]float64{5}) != 0 {
		t.Fatal("single frequency should fit 0")
	}
	if FitExponent([]float64{0, 0, 0}) != 0 {
		t.Fatal("all-zero input should fit 0")
	}
}

func TestF2AndResidual(t *testing.T) {
	freqs := []float64{4, 3, 2, 1}
	if got := F2(freqs); got != 30 {
		t.Fatalf("F2 = %v, want 30", got)
	}
	if got := ResidualF2(freqs, 1); got != 30 {
		t.Fatalf("ResidualF2(r=1) = %v, want 30", got)
	}
	if got := ResidualF2(freqs, 2); got != 14 { // drop the 4
		t.Fatalf("ResidualF2(r=2) = %v, want 14", got)
	}
	if got := ResidualF2(freqs, 5); got != 0 {
		t.Fatalf("ResidualF2(r=5) = %v, want 0", got)
	}
	// Unsorted input must be handled: residual is over the *heaviest* r-1.
	if got := ResidualF2([]float64{1, 4, 2, 3}, 2); got != 14 {
		t.Fatalf("ResidualF2 unsorted = %v, want 14", got)
	}
}

// TestResidualF2BoundDominates verifies the paper's closed-form bound
// indeed upper-bounds the true residual F2 for exact Zipf data.
func TestResidualF2BoundDominates(t *testing.T) {
	const cz = 100.0
	for _, zeta := range []float64{0.8, 1.0, 1.5} {
		freqs := make([]float64, 2000)
		for i := range freqs {
			freqs[i] = cz * math.Pow(float64(i+1), -zeta)
		}
		for _, r := range []int{2, 8, 64, 256} {
			actual := ResidualF2(freqs, r)
			bound := ResidualF2Bound(cz, zeta, r)
			if actual > bound {
				t.Fatalf("zeta=%v r=%d: residual %v exceeds bound %v", zeta, r, actual, bound)
			}
		}
	}
}

func TestResidualF2BoundOutOfRange(t *testing.T) {
	if !math.IsInf(ResidualF2Bound(1, 0.5, 10), 1) {
		t.Fatal("zeta=0.5 should give +Inf (bound requires zeta > 1/2)")
	}
	if !math.IsInf(ResidualF2Bound(1, 1.2, 1), 1) {
		t.Fatal("r=1 should give +Inf")
	}
}

func TestExpectedCounts(t *testing.T) {
	d := MustNew(10, 1)
	counts := d.ExpectedCounts(100)
	if len(counts) != 10 {
		t.Fatalf("got %d counts", len(counts))
	}
	sum := 0.0
	for _, c := range counts {
		sum += c
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Fatalf("expected counts sum to %v, want 100", sum)
	}
	if counts[0] <= counts[9] {
		t.Fatal("expected counts must be decreasing")
	}
}

func BenchmarkSample(b *testing.B) {
	d := MustNew(50000, 1.05)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Sample(rng)
	}
}
