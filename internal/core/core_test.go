package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"csfltr/internal/dp"
	"csfltr/internal/sketch"
	"csfltr/internal/zipf"
)

// testParams returns small, collision-light parameters for exactness
// tests.
func testParams() Params {
	p := DefaultParams()
	p.W = 1024
	p.Z = 9
	p.Z1 = 5
	p.Epsilon = 0 // DP off unless a test opts in
	p.K = 10
	return p
}

func newPair(t testing.TB, p Params, mech dp.Mechanism) (*Querier, *Owner) {
	t.Helper()
	const seed = 42
	q, err := NewQuerier(p, seed, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if mech == nil {
		mech = dp.Disabled()
	}
	o, err := NewOwner(p, seed, mech)
	if err != nil {
		t.Fatal(err)
	}
	return q, o
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Params){
		func(p *Params) { p.Z = 0 },
		func(p *Params) { p.W = 1 },
		func(p *Params) { p.Z1 = 0 },
		func(p *Params) { p.Z1 = p.Z + 1 },
		func(p *Params) { p.Epsilon = -0.5 },
		func(p *Params) { p.Alpha = 0 },
		func(p *Params) { p.Beta = 0 },
		func(p *Params) { p.Beta = 1.5 },
		func(p *Params) { p.K = 0 },
	}
	for i, mut := range mutations {
		p := DefaultParams()
		mut(&p)
		if err := p.Validate(); !errors.Is(err, ErrBadParams) {
			t.Fatalf("mutation %d: expected ErrBadParams, got %v", i, err)
		}
	}
	if DefaultParams().HeapCap() != 750 {
		t.Fatalf("default heap cap = %d, want 750", DefaultParams().HeapCap())
	}
}

func TestCostAdd(t *testing.T) {
	a := Cost{Messages: 1, BytesSent: 10, BytesReceived: 20, SketchLookups: 3}
	a.Add(Cost{Messages: 2, BytesSent: 5, BytesReceived: 7, SketchLookups: 4})
	if a.Messages != 3 || a.BytesSent != 15 || a.BytesReceived != 27 || a.SketchLookups != 7 {
		t.Fatalf("Cost.Add wrong: %+v", a)
	}
}

func TestBuildQueryObfuscation(t *testing.T) {
	p := testParams()
	q, _ := newPair(t, p, nil)
	term := uint64(12345)
	query, priv := q.BuildQuery(term)
	if len(query.Cols) != p.Z {
		t.Fatalf("query has %d cols", len(query.Cols))
	}
	if len(priv.PV) != p.Z1 {
		t.Fatalf("PV has %d rows, want %d", len(priv.PV), p.Z1)
	}
	for i := 1; i < len(priv.PV); i++ {
		if priv.PV[i] <= priv.PV[i-1] {
			t.Fatal("PV must be sorted and unique")
		}
	}
	// Real rows carry the real hash.
	for _, a := range priv.PV {
		if query.Cols[a] != q.Family().Index(a, term) {
			t.Fatalf("row %d: real column mismatch", a)
		}
	}
	// PV differs across queries (it is a fresh random permutation).
	differs := false
	for trial := 0; trial < 20; trial++ {
		_, priv2 := q.BuildQuery(term)
		for i := range priv2.PV {
			if priv2.PV[i] != priv.PV[i] {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatal("PV never changed across 20 queries")
	}
	if query.WireSize() != int64(4*p.Z) {
		t.Fatalf("wire size = %d", query.WireSize())
	}
}

func TestTFRoundTripExact(t *testing.T) {
	for _, kind := range []sketch.Kind{sketch.Count, sketch.CountMin} {
		p := testParams()
		p.SketchKind = kind
		q, o := newPair(t, p, nil)
		counts := map[uint64]int64{100: 7, 200: 3, 300: 12}
		if err := o.AddDocument(0, counts); err != nil {
			t.Fatal(err)
		}
		for term, want := range counts {
			query, priv := q.BuildQuery(term)
			resp, err := o.AnswerTF(0, query)
			if err != nil {
				t.Fatal(err)
			}
			got, err := q.Recover(priv, resp)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-float64(want)) > 1e-9 {
				t.Fatalf("kind %v: TF(%d) = %v, want %d", kind, term, got, want)
			}
		}
		// Absent term: zero.
		query, priv := q.BuildQuery(999)
		resp, _ := o.AnswerTF(0, query)
		got, _ := q.Recover(priv, resp)
		if got != 0 {
			t.Fatalf("kind %v: absent term estimated %v", kind, got)
		}
	}
}

func TestTFWithDPNoiseUnbiased(t *testing.T) {
	p := testParams()
	p.Epsilon = 0.5
	rng := rand.New(rand.NewSource(3))
	mech, err := dp.ForEpsilon(p.Epsilon, rng)
	if err != nil {
		t.Fatal(err)
	}
	q, o := newPair(t, p, mech)
	if err := o.AddDocument(0, map[uint64]int64{55: 20}); err != nil {
		t.Fatal(err)
	}
	var sum float64
	const trials = 3000
	for i := 0; i < trials; i++ {
		query, priv := q.BuildQuery(55)
		resp, err := o.AnswerTF(0, query)
		if err != nil {
			t.Fatal(err)
		}
		got, err := q.Recover(priv, resp)
		if err != nil {
			t.Fatal(err)
		}
		sum += got
	}
	mean := sum / trials
	if math.Abs(mean-20) > 1.0 {
		t.Fatalf("noisy TF mean %v, want ~20", mean)
	}
}

func TestAnswerTFErrors(t *testing.T) {
	p := testParams()
	q, o := newPair(t, p, nil)
	if err := o.AddDocument(0, map[uint64]int64{1: 1}); err != nil {
		t.Fatal(err)
	}
	query, _ := q.BuildQuery(1)
	if _, err := o.AnswerTF(99, query); !errors.Is(err, ErrUnknownDoc) {
		t.Fatalf("unknown doc: %v", err)
	}
	if _, err := o.AnswerTF(0, &TFQuery{Cols: query.Cols[:2]}); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("short query: %v", err)
	}
	if _, err := o.AnswerTF(0, nil); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("nil query: %v", err)
	}
	// Owner without doc tables refuses TF.
	o2, err := NewOwner(p, 42, dp.Disabled(), WithoutDocTables())
	if err != nil {
		t.Fatal(err)
	}
	if err := o2.AddDocument(0, map[uint64]int64{1: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := o2.AnswerTF(0, query); !errors.Is(err, ErrNoSketches) {
		t.Fatalf("expected ErrNoSketches, got %v", err)
	}
}

func TestRecoverErrors(t *testing.T) {
	p := testParams()
	q, _ := newPair(t, p, nil)
	_, priv := q.BuildQuery(1)
	if _, err := q.Recover(priv, nil); !errors.Is(err, ErrBadQuery) {
		t.Fatal("nil response should error")
	}
	if _, err := q.Recover(priv, &TFResponse{Values: []float64{1}}); !errors.Is(err, ErrBadQuery) {
		t.Fatal("short response should error")
	}
}

func TestOwnerDocManagement(t *testing.T) {
	p := testParams()
	_, o := newPair(t, p, nil)
	if err := o.AddDocument(5, map[uint64]int64{1: 2, 2: 3}); err != nil {
		t.Fatal(err)
	}
	if err := o.AddDocument(5, map[uint64]int64{1: 2}); err == nil {
		t.Fatal("duplicate id should error")
	}
	if err := o.AddDocument(3, map[uint64]int64{9: 1}); err != nil {
		t.Fatal(err)
	}
	ids := o.DocIDs()
	if len(ids) != 2 || ids[0] != 3 || ids[1] != 5 {
		t.Fatalf("DocIDs = %v", ids)
	}
	length, unique, err := o.DocMeta(5)
	if err != nil || length != 5 || unique != 2 {
		t.Fatalf("DocMeta(5) = %d,%d,%v", length, unique, err)
	}
	if _, _, err := o.DocMeta(99); !errors.Is(err, ErrUnknownDoc) {
		t.Fatal("DocMeta of unknown doc should error")
	}
	if err := o.RemoveDocument(5); err != nil {
		t.Fatal(err)
	}
	if err := o.RemoveDocument(5); !errors.Is(err, ErrUnknownDoc) {
		t.Fatal("double remove should error")
	}
	if got := o.DocIDs(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("DocIDs after removal = %v", got)
	}
}

func TestRTKSketchCapInvariant(t *testing.T) {
	p := testParams()
	p.Alpha = 2
	p.K = 3 // cap = 6
	_, o := newPair(t, p, nil)
	rng := rand.New(rand.NewSource(1))
	for id := 0; id < 50; id++ {
		counts := map[uint64]int64{}
		for j := 0; j < 20; j++ {
			counts[uint64(rng.Intn(100))]++
		}
		if err := o.AddDocument(id, counts); err != nil {
			t.Fatal(err)
		}
	}
	if load := o.RTK().MaxCellLoad(); load > p.HeapCap() {
		t.Fatalf("cell load %d exceeds cap %d", load, p.HeapCap())
	}
	if o.RTK().NumDocs() != 50 {
		t.Fatalf("NumDocs = %d", o.RTK().NumDocs())
	}
}

func TestRTKSketchDelete(t *testing.T) {
	p := testParams()
	q, o := newPair(t, p, nil)
	if err := o.AddDocument(0, map[uint64]int64{7: 5}); err != nil {
		t.Fatal(err)
	}
	if err := o.AddDocument(1, map[uint64]int64{7: 9}); err != nil {
		t.Fatal(err)
	}
	got, _, err := RTKReverseTopK(q, o, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].DocID != 1 {
		t.Fatalf("before delete: %v", got)
	}
	if err := o.RemoveDocument(1); err != nil {
		t.Fatal(err)
	}
	got, _, err = RTKReverseTopK(q, o, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, dc := range got {
		if dc.DocID == 1 {
			t.Fatal("deleted document still returned")
		}
	}
	// Delete of a never-present doc touches nothing.
	if removed := o.RTK().Delete(12345); removed != 0 {
		t.Fatalf("phantom delete removed %d entries", removed)
	}
}

// buildZipfOwner populates an owner (and returns exact counts) with n
// documents whose counts of the probe term follow a skewed profile, so
// top-K is well defined.
func buildZipfOwner(t testing.TB, p Params, mech dp.Mechanism, n int, probe uint64) (*Owner, map[int]map[uint64]int64) {
	t.Helper()
	if mech == nil {
		mech = dp.Disabled()
	}
	o, err := NewOwner(p, 42, mech)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	dist := zipf.MustNew(500, 1.05)
	exact := make(map[int]map[uint64]int64, n)
	for id := 0; id < n; id++ {
		counts := map[uint64]int64{}
		// Background terms.
		for j := 0; j < 80; j++ {
			counts[uint64(1000+dist.Sample(rng))]++
		}
		// Probe term with a distinctive skewed count: doc 0 has the most.
		c := int64(0)
		if id < 40 {
			c = int64(200 / (id + 1))
		}
		if c > 0 {
			counts[probe] = c
		}
		exact[id] = counts
		if err := o.AddDocument(id, counts); err != nil {
			t.Fatal(err)
		}
	}
	return o, exact
}

func TestNaiveReverseTopKExact(t *testing.T) {
	p := testParams()
	p.K = 10
	q, _ := newPair(t, p, nil)
	const probe = uint64(77)
	o, exact := buildZipfOwner(t, p, nil, 120, probe)
	got, cost, err := NaiveReverseTopK(q, o, probe, p.K)
	if err != nil {
		t.Fatal(err)
	}
	truth := ExactReverseTopK(exact, probe, p.K)
	if cr := CoverRate(got, truth); cr < 0.9 {
		t.Fatalf("naive cover rate %v too low (got %v truth %v)", cr, got, truth)
	}
	if cost.Messages != 120 {
		t.Fatalf("naive should message once per doc, got %d", cost.Messages)
	}
	if cost.BytesReceived != int64(120*8*p.Z) {
		t.Fatalf("naive bytes received = %d", cost.BytesReceived)
	}
}

func TestRTKAgreesWithNaive(t *testing.T) {
	p := testParams()
	p.K = 10
	p.Alpha = 8
	p.Beta = 0.1
	q, _ := newPair(t, p, nil)
	const probe = uint64(77)
	o, exact := buildZipfOwner(t, p, nil, 400, probe)
	truth := ExactReverseTopK(exact, probe, p.K)
	rtk, cost, err := RTKReverseTopK(q, o, probe, p.K)
	if err != nil {
		t.Fatal(err)
	}
	if cr := CoverRate(rtk, truth); cr < 0.8 {
		t.Fatalf("RTK cover rate %v too low", cr)
	}
	if cost.Messages != 1 {
		t.Fatalf("RTK should be one round trip, got %d messages", cost.Messages)
	}
	naive, naiveCost, err := NaiveReverseTopK(q, o, probe, p.K)
	if err != nil {
		t.Fatal(err)
	}
	if CoverRate(rtk, naive) < 0.7 {
		t.Fatal("RTK and NAIVE disagree badly at generous parameters")
	}
	if cost.BytesReceived >= naiveCost.BytesReceived {
		t.Fatalf("RTK traffic (%d) should undercut NAIVE (%d) at n=400",
			cost.BytesReceived, naiveCost.BytesReceived)
	}
}

func TestRTKEstimatorModes(t *testing.T) {
	p := testParams()
	p.K = 10
	const probe = uint64(77)
	truthOwner, exact := buildZipfOwner(t, p, nil, 200, probe)
	truth := ExactReverseTopK(exact, probe, p.K)
	for _, mode := range []EstimatorMode{EstimatorZeroFill, EstimatorPresentRows} {
		pm := p
		pm.Estimator = mode
		q, err := NewQuerier(pm, 42, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := RTKReverseTopK(q, truthOwner, probe, pm.K)
		if err != nil {
			t.Fatal(err)
		}
		if cr := CoverRate(got, truth); cr < 0.7 {
			t.Fatalf("mode %d: cover rate %v", mode, cr)
		}
	}
	bad := p
	bad.Estimator = EstimatorMode(9)
	if err := bad.Validate(); !errors.Is(err, ErrBadParams) {
		t.Fatal("unknown estimator mode should be rejected")
	}
}

func TestRTKWithCountMin(t *testing.T) {
	p := testParams()
	p.SketchKind = sketch.CountMin
	p.K = 5
	q, _ := newPair(t, p, nil)
	const probe = uint64(88)
	o, exact := buildZipfOwner(t, p, nil, 60, probe)
	got, _, err := RTKReverseTopK(q, o, probe, p.K)
	if err != nil {
		t.Fatal(err)
	}
	truth := ExactReverseTopK(exact, probe, p.K)
	if cr := CoverRate(got, truth); cr < 0.8 {
		t.Fatalf("CountMin RTK cover rate %v", cr)
	}
}

func TestReverseTopKBadK(t *testing.T) {
	p := testParams()
	q, o := newPair(t, p, nil)
	if _, _, err := NaiveReverseTopK(q, o, 1, 0); !errors.Is(err, ErrBadParams) {
		t.Fatal("k=0 should error")
	}
	if _, _, err := RTKReverseTopK(q, o, 1, -1); !errors.Is(err, ErrBadParams) {
		t.Fatal("negative k should error")
	}
}

func TestExactReverseTopK(t *testing.T) {
	counts := map[int]map[uint64]int64{
		0: {5: 3},
		1: {5: 9},
		2: {5: 1},
		3: {6: 100}, // different term
	}
	got := ExactReverseTopK(counts, 5, 2)
	if len(got) != 2 || got[0].DocID != 1 || got[1].DocID != 0 {
		t.Fatalf("ExactReverseTopK = %v", got)
	}
	if got := ExactReverseTopK(counts, 999, 3); len(got) != 0 {
		t.Fatalf("absent term should return empty, got %v", got)
	}
}

func TestCoverRate(t *testing.T) {
	mk := func(ids ...int) []DocCount {
		out := make([]DocCount, len(ids))
		for i, id := range ids {
			out[i] = DocCount{DocID: id}
		}
		return out
	}
	if got := CoverRate(mk(1, 2, 3), mk(2, 3, 4)); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("CoverRate = %v", got)
	}
	if CoverRate(mk(), mk()) != 1 {
		t.Fatal("empty truth should be 1")
	}
	if CoverRate(mk(), mk(1)) != 0 {
		t.Fatal("empty got vs nonempty truth should be 0")
	}
}

func TestRTKSketchValidation(t *testing.T) {
	p := testParams()
	fam, err := p.Family(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRTKSketch(p, nil); !errors.Is(err, ErrBadParams) {
		t.Fatal("nil family should error")
	}
	p2 := p
	p2.W = p.W * 2
	if _, err := NewRTKSketch(p2, fam); !errors.Is(err, ErrBadParams) {
		t.Fatal("geometry mismatch should error")
	}
	s, err := NewRTKSketch(p, fam)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Update(0, nil); !errors.Is(err, ErrBadParams) {
		t.Fatal("nil table should error")
	}
}

func TestNewQuerierValidation(t *testing.T) {
	p := testParams()
	if _, err := NewQuerier(p, 1, nil); !errors.Is(err, ErrBadParams) {
		t.Fatal("nil rng should error")
	}
	p.Z = 0
	if _, err := NewQuerier(p, 1, rand.New(rand.NewSource(1))); !errors.Is(err, ErrBadParams) {
		t.Fatal("bad params should error")
	}
}

func TestNewOwnerValidation(t *testing.T) {
	p := testParams()
	if _, err := NewOwner(p, 1, nil); !errors.Is(err, ErrBadParams) {
		t.Fatal("nil mechanism should error")
	}
	p.W = 0
	if _, err := NewOwner(p, 1, dp.Disabled()); !errors.Is(err, ErrBadParams) {
		t.Fatal("bad params should error")
	}
}

// TestSpaceAccounting: the RTK-Sketch should be dramatically smaller than
// the per-document sketch collection once n is large (Section VI-D).
func TestSpaceAccounting(t *testing.T) {
	p := testParams()
	p.Alpha = 2
	p.K = 5
	_, o := newPair(t, p, nil)
	rng := rand.New(rand.NewSource(2))
	for id := 0; id < 300; id++ {
		counts := map[uint64]int64{}
		for j := 0; j < 30; j++ {
			counts[uint64(rng.Intn(500))]++
		}
		if err := o.AddDocument(id, counts); err != nil {
			t.Fatal(err)
		}
	}
	naive := o.NaiveSizeBytes()
	rtk := o.RTKSizeBytes()
	if naive == 0 || rtk == 0 {
		t.Fatal("space accounting returned zero")
	}
	if rtk >= naive {
		t.Fatalf("RTK space (%d) should be below NAIVE space (%d) at n=300", rtk, naive)
	}
}

func BenchmarkNaiveReverseTopK(b *testing.B) {
	p := DefaultParams()
	p.Epsilon = 0
	q, err := NewQuerier(p, 42, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	o, _ := buildZipfOwner(b, p, nil, 1000, 77)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := NaiveReverseTopK(q, o, 77, p.K); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRTKReverseTopK(b *testing.B) {
	p := DefaultParams()
	p.Epsilon = 0
	q, err := NewQuerier(p, 42, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	o, _ := buildZipfOwner(b, p, nil, 1000, 77)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := RTKReverseTopK(q, o, 77, p.K); err != nil {
			b.Fatal(err)
		}
	}
}
