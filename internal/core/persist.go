package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"csfltr/internal/dp"
	"csfltr/internal/hashutil"
	"csfltr/internal/sketch"
)

// ErrCorruptState marks unreadable persisted owner state.
var ErrCorruptState = errors.New("core: corrupt persisted state")

// persistMagic and persistVersion guard the owner snapshot format.
const (
	persistMagic   = uint32(0x43534F31) // "CSO1"
	persistVersion = uint32(1)
)

// WriteTo persists the owner's full state — parameters, hash seed,
// document metadata, per-document sketches (when retained) and the
// RTK-Sketch — in a self-contained binary snapshot. The paper motivates
// this: sketches are "reusable after construction", so a party builds
// them once and serves queries across sessions. The snapshot contains
// the federation hash seed, so it must be stored with the same care as
// the party's raw documents.
func (o *Owner) WriteTo(w io.Writer) (int64, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	cw := &countingWriter{w: bufio.NewWriterSize(w, 1<<16)}
	put32 := func(v uint32) { _ = binary.Write(cw, binary.LittleEndian, v) }
	put64 := func(v uint64) { _ = binary.Write(cw, binary.LittleEndian, v) }
	putF := func(v float64) { _ = binary.Write(cw, binary.LittleEndian, v) }

	put32(persistMagic)
	put32(persistVersion)
	// Parameters.
	put32(uint32(o.params.SketchKind))
	put32(uint32(o.params.HashKind))
	put64(uint64(o.params.Z))
	put64(uint64(o.params.W))
	put64(uint64(o.params.Z1))
	putF(o.params.Epsilon)
	put64(uint64(o.params.Alpha))
	putF(o.params.Beta)
	put64(uint64(o.params.K))
	put32(uint32(o.params.Estimator))
	put64(o.fam.Seed())
	// Documents.
	ids := append([]int(nil), o.ids...) // under o.mu; DocIDs would deadlock
	sort.Ints(ids)
	put64(uint64(len(ids)))
	keep := uint32(0)
	if o.keepDocTables {
		keep = 1
	}
	put32(keep)
	for _, id := range ids {
		m := o.meta[id]
		put64(uint64(int64(id)))
		put64(uint64(int64(m.length)))
		put64(uint64(int64(m.unique)))
		if o.keepDocTables {
			data, err := o.docTables[id].MarshalBinary()
			if err != nil {
				return cw.n, err
			}
			put64(uint64(len(data)))
			if _, err := cw.Write(data); err != nil {
				return cw.n, err
			}
		}
	}
	// RTK-Sketch cells, each in canonical ascending-DocID order: the
	// internal heap layout depends on ingestion history (sequential vs
	// bulk), but the snapshot must be a pure function of the corpus so
	// save -> load -> save stays byte-stable.
	scratch := make([]Entry, 0, o.params.HeapCap())
	for c := range o.rtk.cells {
		h := &o.rtk.cells[c]
		scratch = append(scratch[:0], h.entries...)
		sortEntriesByDoc(scratch)
		put64(uint64(len(scratch)))
		for _, e := range scratch {
			put64(uint64(int64(e.DocID)))
			put64(uint64(e.Value))
		}
	}
	put64(uint64(o.rtk.docs))
	if cw.err != nil {
		return cw.n, cw.err
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

// countingWriter tracks bytes and the first error.
type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}

// ReadOwner reconstructs an owner from a snapshot written by WriteTo. The
// DP mechanism is not persisted (it holds a random source); the caller
// supplies a fresh one, typically dp.ForEpsilon(params.Epsilon, rng)
// using the parameters recovered from the snapshot (see Owner.Params).
func ReadOwner(r io.Reader, mech dp.Mechanism) (*Owner, error) {
	if mech == nil {
		return nil, fmt.Errorf("%w: nil DP mechanism", ErrBadParams)
	}
	br := bufio.NewReaderSize(r, 1<<16)
	var g32 uint32
	var g64 uint64
	var gF float64
	read := func(v any) bool {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return false
		}
		return true
	}
	if !read(&g32) || g32 != persistMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptState)
	}
	if !read(&g32) || g32 != persistVersion {
		return nil, fmt.Errorf("%w: unsupported version", ErrCorruptState)
	}
	var p Params
	if !read(&g32) {
		return nil, fmt.Errorf("%w: truncated params", ErrCorruptState)
	}
	p.SketchKind = sketch.Kind(g32)
	if !read(&g32) {
		return nil, fmt.Errorf("%w: truncated params", ErrCorruptState)
	}
	p.HashKind = hashutil.Kind(g32)
	for _, dst := range []*int{&p.Z, &p.W, &p.Z1} {
		if !read(&g64) {
			return nil, fmt.Errorf("%w: truncated params", ErrCorruptState)
		}
		*dst = int(int64(g64))
	}
	if !read(&gF) {
		return nil, fmt.Errorf("%w: truncated params", ErrCorruptState)
	}
	p.Epsilon = gF
	if !read(&g64) {
		return nil, fmt.Errorf("%w: truncated params", ErrCorruptState)
	}
	p.Alpha = int(int64(g64))
	if !read(&gF) {
		return nil, fmt.Errorf("%w: truncated params", ErrCorruptState)
	}
	p.Beta = gF
	if !read(&g64) {
		return nil, fmt.Errorf("%w: truncated params", ErrCorruptState)
	}
	p.K = int(int64(g64))
	if !read(&g32) {
		return nil, fmt.Errorf("%w: truncated params", ErrCorruptState)
	}
	p.Estimator = EstimatorMode(g32)
	var seed uint64
	if !read(&seed) {
		return nil, fmt.Errorf("%w: truncated seed", ErrCorruptState)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptState, err)
	}
	// Plausibility caps: a hostile or corrupt snapshot must not drive the
	// allocation of z*w heaps (or the hash coefficient table) to absurd
	// sizes before we even look at the payload.
	if p.Z > 1<<12 || p.W > 1<<22 || p.Alpha > 1<<20 || p.K > 1<<24 ||
		int64(p.Alpha)*int64(p.K) > 1<<28 {
		return nil, fmt.Errorf("%w: implausible parameters z=%d w=%d alpha=%d k=%d",
			ErrCorruptState, p.Z, p.W, p.Alpha, p.K)
	}

	var nDocs uint64
	if !read(&nDocs) || nDocs > 1<<40 {
		return nil, fmt.Errorf("%w: implausible document count", ErrCorruptState)
	}
	var keep uint32
	if !read(&keep) {
		return nil, fmt.Errorf("%w: truncated header", ErrCorruptState)
	}
	var opts []OwnerOption
	if keep == 0 {
		opts = append(opts, WithoutDocTables())
	}
	o, err := NewOwner(p, seed, mech, opts...)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptState, err)
	}
	for i := uint64(0); i < nDocs; i++ {
		var id, length, unique uint64
		if !read(&id) || !read(&length) || !read(&unique) {
			return nil, fmt.Errorf("%w: truncated document %d", ErrCorruptState, i)
		}
		docID := int(int64(id))
		o.meta[docID] = docMeta{length: int(int64(length)), unique: int(int64(unique))}
		o.trackID(docID)
		if keep == 1 {
			var tblLen uint64
			if !read(&tblLen) || tblLen > 1<<32 {
				return nil, fmt.Errorf("%w: bad table length for doc %d", ErrCorruptState, docID)
			}
			buf := make([]byte, tblLen)
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, fmt.Errorf("%w: truncated table for doc %d", ErrCorruptState, docID)
			}
			tbl, err := sketch.UnmarshalTable(buf)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorruptState, err)
			}
			o.docTables[docID] = tbl
		}
	}
	o.idsSorted = false
	for c := range o.rtk.cells {
		var n uint64
		if !read(&n) || n > uint64(p.HeapCap()) {
			return nil, fmt.Errorf("%w: bad cell size", ErrCorruptState)
		}
		h := &o.rtk.cells[c]
		h.entries = make([]Entry, n)
		for j := range h.entries {
			var id, val uint64
			if !read(&id) || !read(&val) {
				return nil, fmt.Errorf("%w: truncated cell entry", ErrCorruptState)
			}
			h.entries[j] = Entry{DocID: int32(int64(id)), Value: int64(val)}
		}
		// Snapshots store cells in canonical DocID order; restore the
		// heap invariant so later pushes keep evicting the true minimum.
		h.heapify()
	}
	var docs uint64
	if !read(&docs) {
		return nil, fmt.Errorf("%w: truncated footer", ErrCorruptState)
	}
	o.rtk.docs = int(int64(docs))
	return o, nil
}
