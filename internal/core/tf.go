package core

import (
	"fmt"
	"math/rand"

	"csfltr/internal/hashutil"
	"csfltr/internal/sketch"
)

// TFQuery is the public part of a cross-party TF query: one column index
// per sketch row, of which only the private index set's entries hash the
// real term (Algorithm 1, "Hashing With Obfuscation"). It reveals nothing
// about which entries are real.
type TFQuery struct {
	Cols []uint32
}

// WireSize returns the encoded size in bytes used for communication
// accounting (4 bytes per column index).
func (q *TFQuery) WireSize() int64 { return int64(4 * len(q.Cols)) }

// TFPrivate is the querier-side private state needed to recover the
// answer: the private index set PV and the queried term. It never leaves
// the querier.
type TFPrivate struct {
	Term uint64
	PV   []int // rows whose column index is real, sorted ascending
}

// TFResponse carries the owner's perturbed sketch lookups, one per row
// (Algorithm 2).
type TFResponse struct {
	Values []float64
}

// WireSize returns the encoded size in bytes (8 bytes per value).
func (r *TFResponse) WireSize() int64 { return int64(8 * len(r.Values)) }

// Querier is the query-side endpoint of the cross-party TF protocol. It
// is bound to a federation's shared parameters and hash family. The rng
// drives decoy selection and PV permutation and must not be shared across
// goroutines.
type Querier struct {
	params Params
	fam    *hashutil.Family
	rng    *rand.Rand
}

// NewQuerier builds a querier from shared params, the federation hash
// seed and a private random source.
func NewQuerier(params Params, seed uint64, rng *rand.Rand) (*Querier, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("%w: nil rng", ErrBadParams)
	}
	fam, err := params.Family(seed)
	if err != nil {
		return nil, err
	}
	return &Querier{params: params, fam: fam, rng: rng}, nil
}

// Params returns the shared protocol parameters.
func (q *Querier) Params() Params { return q.params }

// Family exposes the shared hash family (needed by in-process tests and
// the feature layer).
func (q *Querier) Family() *hashutil.Family { return q.fam }

// BuildQuery obfuscates term into a TFQuery plus the private recovery
// state. Exactly Z1 rows carry the real hash h_a(term); the remaining
// rows carry h_a(t') for freshly sampled decoy terms t' (Eq. (4) of the
// paper).
func (q *Querier) BuildQuery(term uint64) (*TFQuery, *TFPrivate) {
	z := q.params.Z
	perm := q.rng.Perm(z)
	pv := append([]int(nil), perm[:q.params.Z1]...)
	sortInts(pv)
	inPV := make([]bool, z)
	for _, a := range pv {
		inPV[a] = true
	}
	cols := make([]uint32, z)
	for a := 0; a < z; a++ {
		if inPV[a] {
			cols[a] = q.fam.Index(a, term)
		} else {
			cols[a] = q.fam.Index(a, q.rng.Uint64())
		}
	}
	return &TFQuery{Cols: cols}, &TFPrivate{Term: term, PV: pv}
}

// Plan is a reusable obfuscated query for one term: the wire-format query
// plus the private recovery state, bound to the parameters and hash family
// they were built with. Building a plan consumes querier randomness once;
// the plan itself is immutable afterwards and safe to share across
// goroutines, which lets a federated search obfuscate each query term once
// and fan the same plan out to every party instead of rebuilding the hash
// vector per (party, term).
type Plan struct {
	params Params
	fam    *hashutil.Family
	query  *TFQuery
	priv   *TFPrivate
}

// Plan builds a reusable query plan for term (Algorithm 1 run once).
func (q *Querier) Plan(term uint64) *Plan {
	query, priv := q.BuildQuery(term)
	return &Plan{params: q.params, fam: q.fam, query: query, priv: priv}
}

// Term returns the planned term.
func (p *Plan) Term() uint64 { return p.priv.Term }

// Query returns the shareable wire query (the private state stays
// inside the plan).
func (p *Plan) Query() *TFQuery { return p.query }

// Recover combines the owner's perturbed values into the final count
// estimate using only the private index set (Eq. (6)): sign-corrected
// median for Count Sketch, minimum for Count-Min.
func (q *Querier) Recover(priv *TFPrivate, resp *TFResponse) (float64, error) {
	if resp == nil || len(resp.Values) != q.params.Z {
		return 0, fmt.Errorf("%w: response has %d values, want %d",
			ErrBadQuery, respLen(resp), q.params.Z)
	}
	vals := make([]float64, len(priv.PV))
	for i, a := range priv.PV {
		vals[i] = resp.Values[a]
	}
	return sketch.EstimateFromRows(q.params.SketchKind, q.fam, priv.Term, priv.PV, vals), nil
}

func respLen(r *TFResponse) int {
	if r == nil {
		return 0
	}
	return len(r.Values)
}

// sortInts is a tiny insertion sort; PV has at most Z elements.
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
