package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"csfltr/internal/dp"
	"csfltr/internal/sketch"
)

// snapshotOwner builds an owner with deterministic content and returns
// its serialized snapshot.
func snapshotOwner(t *testing.T, keepTables bool) (*Owner, []byte) {
	t.Helper()
	p := testParams()
	p.K = 5
	p.Alpha = 2
	var opts []OwnerOption
	if !keepTables {
		opts = append(opts, WithoutDocTables())
	}
	o, err := NewOwner(p, 42, dp.Disabled(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for id := 0; id < 25; id++ {
		counts := map[uint64]int64{uint64(1000 + id): int64(25 - id)}
		for j := 0; j < 20; j++ {
			counts[uint64(rng.Intn(300))]++
		}
		if err := o.AddDocument(id, counts); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	n, err := o.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	return o, buf.Bytes()
}

func TestOwnerSnapshotRoundTrip(t *testing.T) {
	for _, keep := range []bool{true, false} {
		orig, data := snapshotOwner(t, keep)
		got, err := ReadOwner(bytes.NewReader(data), dp.Disabled())
		if err != nil {
			t.Fatalf("keep=%v: %v", keep, err)
		}
		if got.Params() != orig.Params() {
			t.Fatal("params lost")
		}
		if got.Family().Seed() != orig.Family().Seed() {
			t.Fatal("hash seed lost")
		}
		if got.RTK().NumDocs() != orig.RTK().NumDocs() {
			t.Fatalf("doc count lost: %d vs %d", got.RTK().NumDocs(), orig.RTK().NumDocs())
		}
		if got.RTKSizeBytes() != orig.RTKSizeBytes() {
			t.Fatal("RTK payload size differs")
		}
		// Queries behave identically.
		q, err := NewQuerier(orig.Params(), 42, rand.New(rand.NewSource(8)))
		if err != nil {
			t.Fatal(err)
		}
		a, _, err := RTKReverseTopK(q, orig, 1003, 5)
		if err != nil {
			t.Fatal(err)
		}
		q2, _ := NewQuerier(orig.Params(), 42, rand.New(rand.NewSource(8)))
		b, _, err := RTKReverseTopK(q2, got, 1003, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatal("restored owner answers differently")
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("keep=%v: result %d differs: %v vs %v", keep, i, a[i], b[i])
			}
		}
	}
}

func TestReadOwnerTruncation(t *testing.T) {
	_, data := snapshotOwner(t, true)
	// Every strict prefix must fail cleanly with ErrCorruptState, never
	// panic or succeed.
	for _, cut := range []int{0, 3, 4, 8, 10, 30, 60, len(data) / 2, len(data) - 1} {
		if cut >= len(data) {
			continue
		}
		if _, err := ReadOwner(bytes.NewReader(data[:cut]), dp.Disabled()); !errors.Is(err, ErrCorruptState) {
			t.Fatalf("cut=%d: want ErrCorruptState, got %v", cut, err)
		}
	}
}

func TestReadOwnerBadMagicAndVersion(t *testing.T) {
	_, data := snapshotOwner(t, true)
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff
	if _, err := ReadOwner(bytes.NewReader(bad), dp.Disabled()); !errors.Is(err, ErrCorruptState) {
		t.Fatal("bad magic accepted")
	}
	bad = append([]byte(nil), data...)
	bad[4] = 0xff // version
	if _, err := ReadOwner(bytes.NewReader(bad), dp.Disabled()); !errors.Is(err, ErrCorruptState) {
		t.Fatal("bad version accepted")
	}
	if _, err := ReadOwner(bytes.NewReader(data), nil); !errors.Is(err, ErrBadParams) {
		t.Fatal("nil mechanism accepted")
	}
}

func TestReadOwnerRejectsInvalidParams(t *testing.T) {
	_, data := snapshotOwner(t, true)
	bad := append([]byte(nil), data...)
	// Z field (first geometry u64 after magic+version+2 kind u32s).
	off := 4 + 4 + 4 + 4
	for i := 0; i < 8; i++ {
		bad[off+i] = 0
	}
	if _, err := ReadOwner(bytes.NewReader(bad), dp.Disabled()); !errors.Is(err, ErrCorruptState) {
		t.Fatal("zero Z accepted")
	}
}

func TestOwnerAccessors(t *testing.T) {
	p := testParams()
	o, err := NewOwner(p, 42, dp.Disabled())
	if err != nil {
		t.Fatal(err)
	}
	if o.Params() != p {
		t.Fatal("Params accessor wrong")
	}
	if o.Family() == nil || o.Family().Z() != p.Z {
		t.Fatal("Family accessor wrong")
	}
	q, err := NewQuerier(p, 42, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if q.Params() != p {
		t.Fatal("querier Params accessor wrong")
	}
	if o.RTK().Params() != p {
		t.Fatal("RTK Params accessor wrong")
	}
}

func TestMultiTFWireSizes(t *testing.T) {
	p := testParams()
	q, o := newPair(t, p, nil)
	if err := o.AddDocument(0, map[uint64]int64{1: 2, 2: 3}); err != nil {
		t.Fatal(err)
	}
	mq, _ := q.BuildMultiQuery([]uint64{1, 2})
	if mq.WireSize() != int64(2*4*p.Z) {
		t.Fatalf("query wire size = %d", mq.WireSize())
	}
	resp, err := o.AnswerMultiTF(0, mq)
	if err != nil {
		t.Fatal(err)
	}
	if resp.WireSize() != int64(2*8*p.Z) {
		t.Fatalf("response wire size = %d", resp.WireSize())
	}
}

func TestSnapshotSketchKindPreserved(t *testing.T) {
	p := testParams()
	p.SketchKind = sketch.CountMin
	o, err := NewOwner(p, 42, dp.Disabled())
	if err != nil {
		t.Fatal(err)
	}
	if err := o.AddDocument(0, map[uint64]int64{5: 4}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := o.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadOwner(&buf, dp.Disabled())
	if err != nil {
		t.Fatal(err)
	}
	if got.Params().SketchKind != sketch.CountMin {
		t.Fatal("sketch kind lost in snapshot")
	}
}
