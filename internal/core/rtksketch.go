package core

import (
	"fmt"
	"sort"
	"sync"

	"csfltr/internal/hashutil"
	"csfltr/internal/sketch"
)

// Entry is one element of an RTK-Sketch cell: a document id and the raw
// sketch cell value the document produced at this position.
type Entry struct {
	DocID int32
	Value int64
}

// cellHeap is a capped min-heap of entries ordered by ranking key. For
// Count Sketch the key is |Value|: a document's cell value is its
// (sign-weighted) contribution plus collision noise, and the querier
// recovers the sign later, so magnitude is what predicts relevance. For
// Count-Min the key is Value itself (always non-negative).
//
// The heap order is a strict total order — key ascending, ties broken by
// DocID descending — so the set of entries surviving a sequence of
// capped pushes depends only on the pushed set, never on push order or
// on how the pushes were partitioned across accumulators. That
// content-addressed determinism is what lets the bulk loader fold
// per-worker stripes independently and merge them afterwards while
// staying bit-identical to a sequential AddDocument loop (all observable
// surfaces emit entries in canonical ascending-DocID order; see Cell).
//
// The sift code is hand-rolled rather than container/heap: the interface
// boxing of heap.Push/heap.Pop dominated the bulk-ingest allocation
// profile (two boxed Entry values per cell per document, ~13M allocs per
// 1200-document batch).
type cellHeap struct {
	entries []Entry
	abs     bool // order by |Value| (Count Sketch) instead of Value
	// minKey caches key(entries[0]) while the cell is full (set by
	// heapify and maintained by push), so the overwhelmingly common
	// outcome on a full cell — rejection — costs one comparison against
	// a field already in cache instead of a load from the entry slab.
	minKey int64
}

func (h *cellHeap) key(e Entry) int64 {
	if h.abs {
		if e.Value < 0 {
			return -e.Value
		}
	}
	return e.Value
}

// less is the strict total eviction order: smaller key first, ties by
// larger DocID first — so when keys tie at the cap boundary the larger
// DocID is evicted and the surviving set stays order-independent.
func (h *cellHeap) less(a, b Entry) bool {
	ka, kb := h.key(a), h.key(b)
	if ka != kb {
		return ka < kb
	}
	return a.DocID > b.DocID
}

// push inserts e, keeping at most cap entries: once full, e replaces the
// minimum iff it beats it, which is exactly "push then evict the
// minimum" without ever growing past cap.
//
// While a cell is below capacity the entries are a plain unordered
// append buffer — the heap invariant is only needed to locate the
// eviction minimum, so it is established lazily (one heapify) the
// moment the cell first fills. Under-capacity corpora therefore ingest
// at append speed with zero sift work, which is where the bulk of the
// old per-push sifting went.
func (h *cellHeap) push(e Entry, cap int) {
	if len(h.entries) < cap {
		h.entries = append(h.entries, e)
		if len(h.entries) == cap {
			h.heapify()
		}
		return
	}
	if cap <= 0 {
		return
	}
	ke := h.key(e)
	if ke < h.minKey {
		return // below the floor: rejected without touching the slab
	}
	if ke == h.minKey && e.DocID >= h.entries[0].DocID {
		return // ties on the floor keep the smaller DocID
	}
	h.entries[0] = e
	h.siftDown(0)
	h.minKey = h.key(h.entries[0])
}

func (h *cellHeap) siftDown(i int) {
	n := len(h.entries)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.less(h.entries[r], h.entries[l]) {
			m = r
		}
		if !h.less(h.entries[m], h.entries[i]) {
			return
		}
		h.entries[i], h.entries[m] = h.entries[m], h.entries[i]
		i = m
	}
}

// heapify restores the heap invariant (and the cached minimum key) over
// an arbitrarily ordered entry slice — when a cell first fills, after a
// bulk removal, or after a snapshot load.
func (h *cellHeap) heapify() {
	for i := len(h.entries)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	if len(h.entries) > 0 {
		h.minKey = h.key(h.entries[0])
	}
}

// sortEntriesByDoc puts a cell copy into the canonical ascending-DocID
// order every observable surface (Cell, AnswerRTK, snapshots) uses.
func sortEntriesByDoc(es []Entry) {
	sort.Slice(es, func(i, j int) bool { return es[i].DocID < es[j].DocID })
}

// rtkAccum is a per-worker private accumulator used by the bulk loader:
// the same z x w grid of capped cells as the RTK-Sketch, but backed by a
// single fixed-stride Entry slab (cell c owns slab[c*cap : (c+1)*cap])
// so building one costs two allocations regardless of batch size. Each
// worker folds its document stripe into its own accumulator without
// synchronization; a deterministic merge pass folds the survivors into
// the shared sketch afterwards.
type rtkAccum struct {
	cells   int
	cap     int
	abs     bool
	lens    []int32
	minKeys []int64 // per-cell cached floor key, valid once the cell is full
	slab    []Entry
}

// accumPool recycles accumulator slabs across batches (and owners): at
// default geometry one slab is z*w*heapCap entries, the dominant scratch
// allocation of a bulk load.
var accumPool sync.Pool

// getAccum returns a pooled accumulator resized for the given grid.
func getAccum(cells, cap int, abs bool) *rtkAccum {
	a, _ := accumPool.Get().(*rtkAccum)
	if a == nil {
		a = &rtkAccum{}
	}
	a.cells, a.cap, a.abs = cells, cap, abs
	need := cells * cap
	if len(a.slab) < need {
		a.slab = make([]Entry, need)
	}
	if len(a.lens) < cells {
		a.lens = make([]int32, cells)
		a.minKeys = make([]int64, cells)
	} else {
		for i := 0; i < cells; i++ {
			a.lens[i] = 0
		}
	}
	return a
}

// putAccum returns an accumulator to the pool.
func putAccum(a *rtkAccum) {
	if a != nil {
		accumPool.Put(a)
	}
}

// push folds one entry into cell c under the shared eviction order. The
// three-index slice pins capacity to the cell's slab stride, so the
// in-place append in cellHeap.push can never spill into a neighbour.
func (a *rtkAccum) push(c int, e Entry) {
	off := c * a.cap
	v := cellHeap{
		entries: a.slab[off : off+int(a.lens[c]) : off+a.cap],
		abs:     a.abs,
		minKey:  a.minKeys[c],
	}
	v.push(e, a.cap)
	a.lens[c] = int32(len(v.entries))
	a.minKeys[c] = v.minKey
}

// addTable folds one document's sketch table into every cell.
func (a *rtkAccum) addTable(docID int, table *sketch.Table, z, w int) {
	id := int32(docID)
	for i := 0; i < z; i++ {
		for j := 0; j < w; j++ {
			a.push(i*w+j, Entry{DocID: id, Value: table.Cell(i, uint32(j))})
		}
	}
}

// RTKSketch is the paper's reverse top-K sketch (Section V-B): a z x w
// table whose every cell is a min-heap of at most alpha*K (docID, value)
// pairs. It replaces the n per-document sketches of the NAIVE solution on
// the owner side and reduces per-term query cost from O(zn) to O(z*alpha*K).
//
// RTKSketch is not safe for concurrent mutation.
type RTKSketch struct {
	params Params
	fam    *hashutil.Family
	cells  []cellHeap // row-major z x w
	docs   int
}

// NewRTKSketch creates an empty RTK-Sketch bound to the shared hash
// family.
func NewRTKSketch(params Params, fam *hashutil.Family) (*RTKSketch, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if fam == nil {
		return nil, fmt.Errorf("%w: nil family", ErrBadParams)
	}
	if fam.Z() != params.Z || fam.W() != params.W {
		return nil, fmt.Errorf("%w: family geometry %dx%d does not match params %dx%d",
			ErrBadParams, fam.Z(), fam.W(), params.Z, params.W)
	}
	cells := make([]cellHeap, params.Z*params.W)
	abs := params.SketchKind == sketch.Count
	for i := range cells {
		cells[i].abs = abs
	}
	return &RTKSketch{params: params, fam: fam, cells: cells}, nil
}

// Params returns the sketch's parameters.
func (s *RTKSketch) Params() Params { return s.params }

// NumDocs returns the number of documents currently summarized.
func (s *RTKSketch) NumDocs() int { return s.docs }

// Update inserts document docID, summarized by its standard sketch table,
// into every cell (Algorithm 4). table must be built over the same hash
// family. Cells keep only the alpha*K entries with the largest ranking
// key; the minimum is evicted on overflow.
func (s *RTKSketch) Update(docID int, table *sketch.Table) error {
	if table == nil || table.Z() != s.params.Z || table.W() != s.params.W {
		return fmt.Errorf("%w: document table geometry mismatch", ErrBadParams)
	}
	s.updateRows(docID, table, 0, s.params.Z)
	s.docs++
	return nil
}

// updateRows is Update restricted to rows [lo, hi). Because eviction is
// a strict total order, the surviving set per cell is a pure function of
// the pushed set — any partition of the pushes over workers or
// accumulators converges to the same state.
func (s *RTKSketch) updateRows(docID int, table *sketch.Table, lo, hi int) {
	cap := s.params.HeapCap()
	w := s.params.W
	id := int32(docID)
	for i := lo; i < hi; i++ {
		for j := 0; j < w; j++ {
			s.cells[i*w+j].push(Entry{DocID: id, Value: table.Cell(i, uint32(j))}, cap)
		}
	}
}

// mergeAccumRows folds rows [lo, hi) of every per-worker accumulator
// into the sketch — the bulk loader's single deterministic merge pass.
// Correctness of the stripe/merge split: an entry in the global top-cap
// of a cell is necessarily in the top-cap of its own stripe (fewer
// competitors), so merging stripe survivors under the same total order
// reproduces exactly the set sequential pushes would keep. Row ranges
// partition the cell array, so concurrent calls over disjoint ranges
// never touch the same heap.
func (s *RTKSketch) mergeAccumRows(accums []*rtkAccum, lo, hi int) {
	cap := s.params.HeapCap()
	w := s.params.W
	for i := lo; i < hi; i++ {
		for j := 0; j < w; j++ {
			c := i*w + j
			h := &s.cells[c]
			for _, acc := range accums {
				off := c * acc.cap
				for _, e := range acc.slab[off : off+int(acc.lens[c])] {
					h.push(e, cap)
				}
			}
		}
	}
}

// addDocs bumps the summarized-document counter after a bulk load.
func (s *RTKSketch) addDocs(n int) { s.docs += n }

// Delete removes every entry of docID from the sketch (Algorithm 4's
// deletion: enumerate all cells and drop the document). Returns the
// number of cells the document was still present in.
func (s *RTKSketch) Delete(docID int) int {
	removed := 0
	id := int32(docID)
	for c := range s.cells {
		h := &s.cells[c]
		n := 0
		hit := false
		for _, e := range h.entries {
			if e.DocID == id {
				removed++
				hit = true
				continue
			}
			h.entries[n] = e
			n++
		}
		if hit {
			h.entries = h.entries[:n]
			h.heapify()
		}
	}
	if removed > 0 {
		s.docs--
	}
	return removed
}

// AbsEvictionKeys reports whether cell eviction ranks entries by
// |Value| (Count Sketch) rather than Value (Count-Min) — the abs flag
// of cellHeap, exposed so partition-merging callers (internal/shard)
// can reproduce the eviction order exactly.
func (p Params) AbsEvictionKeys() bool { return p.SketchKind == sketch.Count }

// MergeCellEntries merges per-partition snapshots of one cell into the
// entry set a single sketch over the union of the partitions' documents
// would hold, returned in the canonical ascending-DocID order of Cell.
//
// Correctness mirrors mergeAccumRows: eviction is a strict total order
// (key descending, key-ties keep the smaller DocID), so an entry in the
// global top-cap is necessarily in the top-cap of its own partition —
// selecting the top-cap of the concatenated survivors under the same
// order reproduces the single-sketch cell bit for bit. abs must be
// Params.AbsEvictionKeys() of the sketches being merged; heapCap is
// Params.HeapCap(). Partitions must not share document ids.
//
//csfltr:deterministic
func MergeCellEntries(parts [][]Entry, heapCap int, abs bool) []Entry {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	merged := make([]Entry, 0, total)
	for _, p := range parts {
		merged = append(merged, p...)
	}
	if total > heapCap {
		key := func(e Entry) int64 {
			if abs && e.Value < 0 {
				return -e.Value
			}
			return e.Value
		}
		sort.Slice(merged, func(i, j int) bool {
			ki, kj := key(merged[i]), key(merged[j])
			if ki != kj {
				return ki > kj
			}
			return merged[i].DocID < merged[j].DocID
		})
		merged = merged[:heapCap]
	}
	sortEntriesByDoc(merged)
	return merged
}

// Cell returns a copy of the entries of cell (row, col) in canonical
// ascending-DocID order. This is the owner-side lookup of Algorithm 5:
// the querier asks for the heaps its term hashes to. The canonical order
// makes responses (and therefore wire encodings and snapshots)
// independent of the internal heap layout, which may differ between
// sequential and bulk ingestion of the same corpus.
func (s *RTKSketch) Cell(row int, col uint32) []Entry {
	h := &s.cells[row*s.params.W+int(col)]
	out := make([]Entry, len(h.entries))
	copy(out, h.entries)
	sortEntriesByDoc(out)
	return out
}

// SizeBytes returns the current memory footprint of the heap payloads
// (12 bytes per entry: 4 for the doc id, 8 for the value), the space
// metric of Fig. 4.
func (s *RTKSketch) SizeBytes() int64 {
	var n int64
	for c := range s.cells {
		n += int64(12 * len(s.cells[c].entries))
	}
	return n
}

// MaxCellLoad returns the largest cell occupancy; useful for verifying
// the alpha*K cap in tests and capacity planning.
func (s *RTKSketch) MaxCellLoad() int {
	max := 0
	for c := range s.cells {
		if l := len(s.cells[c].entries); l > max {
			max = l
		}
	}
	return max
}
