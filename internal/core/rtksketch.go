package core

import (
	"container/heap"
	"fmt"

	"csfltr/internal/hashutil"
	"csfltr/internal/sketch"
)

// Entry is one element of an RTK-Sketch cell: a document id and the raw
// sketch cell value the document produced at this position.
type Entry struct {
	DocID int32
	Value int64
}

// cellHeap is a capped min-heap of entries ordered by ranking key. For
// Count Sketch the key is |Value|: a document's cell value is its
// (sign-weighted) contribution plus collision noise, and the querier
// recovers the sign later, so magnitude is what predicts relevance. For
// Count-Min the key is Value itself (always non-negative).
type cellHeap struct {
	entries []Entry
	abs     bool // order by |Value| (Count Sketch) instead of Value
}

func (h *cellHeap) key(e Entry) int64 {
	if h.abs {
		if e.Value < 0 {
			return -e.Value
		}
	}
	return e.Value
}

func (h *cellHeap) Len() int           { return len(h.entries) }
func (h *cellHeap) Less(i, j int) bool { return h.key(h.entries[i]) < h.key(h.entries[j]) }
func (h *cellHeap) Swap(i, j int)      { h.entries[i], h.entries[j] = h.entries[j], h.entries[i] }
func (h *cellHeap) Push(x any)         { h.entries = append(h.entries, x.(Entry)) }
func (h *cellHeap) Pop() any {
	old := h.entries
	n := len(old)
	e := old[n-1]
	h.entries = old[:n-1]
	return e
}

// RTKSketch is the paper's reverse top-K sketch (Section V-B): a z x w
// table whose every cell is a min-heap of at most alpha*K (docID, value)
// pairs. It replaces the n per-document sketches of the NAIVE solution on
// the owner side and reduces per-term query cost from O(zn) to O(z*alpha*K).
//
// RTKSketch is not safe for concurrent mutation.
type RTKSketch struct {
	params Params
	fam    *hashutil.Family
	cells  []cellHeap // row-major z x w
	docs   int
}

// NewRTKSketch creates an empty RTK-Sketch bound to the shared hash
// family.
func NewRTKSketch(params Params, fam *hashutil.Family) (*RTKSketch, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if fam == nil {
		return nil, fmt.Errorf("%w: nil family", ErrBadParams)
	}
	if fam.Z() != params.Z || fam.W() != params.W {
		return nil, fmt.Errorf("%w: family geometry %dx%d does not match params %dx%d",
			ErrBadParams, fam.Z(), fam.W(), params.Z, params.W)
	}
	cells := make([]cellHeap, params.Z*params.W)
	abs := params.SketchKind == sketch.Count
	for i := range cells {
		cells[i].abs = abs
	}
	return &RTKSketch{params: params, fam: fam, cells: cells}, nil
}

// Params returns the sketch's parameters.
func (s *RTKSketch) Params() Params { return s.params }

// NumDocs returns the number of documents currently summarized.
func (s *RTKSketch) NumDocs() int { return s.docs }

// Update inserts document docID, summarized by its standard sketch table,
// into every cell (Algorithm 4). table must be built over the same hash
// family. Cells keep only the alpha*K entries with the largest ranking
// key; the minimum is evicted on overflow.
func (s *RTKSketch) Update(docID int, table *sketch.Table) error {
	if table == nil || table.Z() != s.params.Z || table.W() != s.params.W {
		return fmt.Errorf("%w: document table geometry mismatch", ErrBadParams)
	}
	s.updateRows(docID, table, 0, s.params.Z)
	s.docs++
	return nil
}

// updateRows is Update restricted to rows [lo, hi). Rows partition the
// cell array, so concurrent updateRows calls over disjoint row ranges
// never touch the same heap; when every range processes documents in the
// same order, the combined state is exactly what sequential Update calls
// in that order would produce — this is what makes the bulk loader's
// row-sharded parallelism deterministic.
func (s *RTKSketch) updateRows(docID int, table *sketch.Table, lo, hi int) {
	cap := s.params.HeapCap()
	w := s.params.W
	for i := lo; i < hi; i++ {
		for j := 0; j < w; j++ {
			h := &s.cells[i*w+j]
			heap.Push(h, Entry{DocID: int32(docID), Value: table.Cell(i, uint32(j))})
			if h.Len() > cap {
				heap.Pop(h)
			}
		}
	}
}

// addDocs bumps the summarized-document counter after a bulk load.
func (s *RTKSketch) addDocs(n int) { s.docs += n }

// Delete removes every entry of docID from the sketch (Algorithm 4's
// deletion: enumerate all cells and drop the document). Returns the
// number of cells the document was still present in.
func (s *RTKSketch) Delete(docID int) int {
	removed := 0
	for c := range s.cells {
		h := &s.cells[c]
		for i := 0; i < len(h.entries); {
			if h.entries[i].DocID == int32(docID) {
				// Remove index i and restore heap order.
				heap.Remove(h, i)
				removed++
				continue // re-examine index i (new element swapped in)
			}
			i++
		}
	}
	if removed > 0 {
		s.docs--
	}
	return removed
}

// Cell returns a copy of the entries of cell (row, col) in heap order
// (unspecified beyond the heap property). This is the owner-side lookup
// of Algorithm 5: the querier asks for the heaps its term hashes to.
func (s *RTKSketch) Cell(row int, col uint32) []Entry {
	h := &s.cells[row*s.params.W+int(col)]
	out := make([]Entry, len(h.entries))
	copy(out, h.entries)
	return out
}

// SizeBytes returns the current memory footprint of the heap payloads
// (12 bytes per entry: 4 for the doc id, 8 for the value), the space
// metric of Fig. 4.
func (s *RTKSketch) SizeBytes() int64 {
	var n int64
	for c := range s.cells {
		n += int64(12 * len(s.cells[c].entries))
	}
	return n
}

// MaxCellLoad returns the largest cell occupancy; useful for verifying
// the alpha*K cap in tests and capacity planning.
func (s *RTKSketch) MaxCellLoad() int {
	max := 0
	for c := range s.cells {
		if l := len(s.cells[c].entries); l > max {
			max = l
		}
	}
	return max
}
