// Package core implements the primary contributions of the CS-F-LTR
// paper:
//
//   - the privacy-preserving cross-party term-frequency query scheme of
//     Section IV (Algorithms 1 and 2): sketch construction, hashing with
//     obfuscation via a private index set, and Laplace result
//     perturbation;
//   - the NAIVE reverse top-K document query of Section V-A
//     (Algorithm 3);
//   - the reverse top-K sketch (RTK-Sketch) of Section V-B
//     (Algorithms 4 and 5) with Update/Delete/Query and the
//     soft-intersection candidate filter.
//
// The package is transport-agnostic: queriers talk to document owners
// through the OwnerAPI interface, implemented in-process by Owner here and
// remotely by package federation. All message types are plain structs so
// they can be serialized by any transport; every response carries enough
// information for byte-level communication accounting (the paper's
// communication-cost axis).
package core

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"csfltr/internal/hashutil"
	"csfltr/internal/sketch"
)

// Errors returned by this package.
var (
	ErrBadParams  = errors.New("core: invalid protocol parameters")
	ErrUnknownDoc = errors.New("core: unknown document")
	ErrNoSketches = errors.New("core: owner does not retain per-document sketches")
	ErrBadQuery   = errors.New("core: malformed query")
)

// EstimatorMode selects how RTK candidates' counts are estimated from
// the heap observations.
type EstimatorMode int

const (
	// EstimatorZeroFill (default) takes the median over ALL private
	// rows, treating rows where the document was evicted from the heap
	// as zeros. Eviction means the value fell below the heap floor, so
	// zero is the best available lower surrogate; this removes the
	// selection bias of scoring a document only on the rows where
	// collision noise inflated it, and in our experiments keeps the
	// cover rate near 1 across the whole Fig. 4 parameter range.
	EstimatorZeroFill EstimatorMode = iota
	// EstimatorPresentRows is the literal reading of Algorithm 5: the
	// median over only the rows where the document appears in the heap.
	// Kept for ablation; it reproduces the cover-rate sensitivity to
	// alpha/beta that the paper's Fig. 4 reports.
	EstimatorPresentRows
)

// Params are the protocol parameters shared by every member of a
// federation. The defaults mirror the paper's experimental setting
// (Section VI-A): alpha=5, beta=0.1, w=200, z=30, K=150, epsilon=0.5.
type Params struct {
	SketchKind sketch.Kind   // Count (default) or CountMin
	HashKind   hashutil.Kind // polynomial (default) or MD5 as in the paper
	Z          int           // sketch rows (z)
	W          int           // sketch columns (w)
	Z1         int           // real hashes per query; the rest are decoys
	Epsilon    float64       // DP budget per TF query; 0 disables DP
	Alpha      int           // RTK heap capacity multiplier (alpha)
	Beta       float64       // RTK soft-intersection fraction (beta)
	K          int           // reverse top-K result size (K)
	Estimator  EstimatorMode // RTK candidate count estimation strategy
	// Parallelism bounds the worker pool used by the parallel federation
	// operations (federated search fan-out, bulk ingestion). 0 — the
	// default — resolves to runtime.GOMAXPROCS(0); 1 reproduces the
	// sequential path exactly. It is a runtime knob, not a protocol
	// parameter: it is not persisted with owner snapshots and does not
	// affect protocol messages or cost accounting.
	Parallelism int
	// MinParties enables degraded-mode federated search: when > 0, a
	// party whose circuit breaker is open is skipped (spending none of
	// its privacy budget) and a party that fails mid-search is dropped
	// from the merge; the search succeeds with a Partial result as long
	// as at least MinParties data parties answered, and fails with a
	// quorum error below that. 0 — the default — disables degraded mode:
	// any party failure fails the whole search. Like Parallelism it is a
	// runtime knob, not persisted with owner snapshots.
	MinParties int
	// CacheBytes enables the federated answer cache (internal/qcache)
	// when > 0: per-(party, term) noisy RTK answers and merged query
	// results are retained up to this byte capacity and replayed at zero
	// additional privacy cost (DP post-processing invariance). 0 — the
	// default — disables caching entirely, reproducing the uncached
	// protocol exactly. A runtime knob like Parallelism: not persisted,
	// no effect on protocol messages.
	CacheBytes int64
	// CacheMaxStale bounds degraded-mode stale serving: when > 0 and a
	// party is skipped (breaker open) or fails mid-search, its
	// contribution may be backfilled from a cache entry at most this old
	// — possibly from before the party's latest ingest — instead of
	// being dropped from the merge. 0 — the default — never serves stale
	// answers. Only meaningful with CacheBytes > 0 and MinParties > 0.
	CacheMaxStale time.Duration
	// Shards partitions each party's corpus across this many owner
	// shards by doc-range (internal/shard); queries scatter-gather over
	// the shards and merge deterministically, bit-identical to the
	// single-Owner path at Epsilon=0. 0 or 1 — the default — keeps the
	// legacy single-Owner backend. A runtime knob like Parallelism: not
	// a protocol parameter, not persisted, invisible to the DP
	// accountant (the noise release point stays at the party boundary).
	Shards int
	// Replicas is the number of read replicas per shard (>= 1 means
	// that many copies; 0 — the default — resolves to 1). Replicas hold
	// identical state — ingestion writes through to all of them — so a
	// replica failing over to a peer never changes query results. Only
	// meaningful with Shards > 1. A runtime knob like Parallelism.
	Replicas int
}

// DefaultParams returns the paper's default parameter setting.
func DefaultParams() Params {
	return Params{
		SketchKind: sketch.Count,
		HashKind:   hashutil.KindPolynomial,
		Z:          30,
		W:          200,
		Z1:         10,
		Epsilon:    0.5,
		Alpha:      5,
		Beta:       0.1,
		K:          150,
	}
}

// Validate reports whether the parameters are internally consistent.
func (p Params) Validate() error {
	switch {
	case p.Z <= 0:
		return fmt.Errorf("%w: Z=%d", ErrBadParams, p.Z)
	case p.W < 2:
		return fmt.Errorf("%w: W=%d", ErrBadParams, p.W)
	case p.Z1 <= 0 || p.Z1 > p.Z:
		return fmt.Errorf("%w: Z1=%d must be in [1, Z=%d]", ErrBadParams, p.Z1, p.Z)
	case p.Epsilon < 0:
		return fmt.Errorf("%w: Epsilon=%v", ErrBadParams, p.Epsilon)
	case p.Alpha <= 0:
		return fmt.Errorf("%w: Alpha=%d", ErrBadParams, p.Alpha)
	case p.Beta <= 0 || p.Beta > 1:
		return fmt.Errorf("%w: Beta=%v", ErrBadParams, p.Beta)
	case p.K <= 0:
		return fmt.Errorf("%w: K=%d", ErrBadParams, p.K)
	case p.Estimator != EstimatorZeroFill && p.Estimator != EstimatorPresentRows:
		return fmt.Errorf("%w: Estimator=%d", ErrBadParams, int(p.Estimator))
	case p.Parallelism < 0:
		return fmt.Errorf("%w: Parallelism=%d", ErrBadParams, p.Parallelism)
	case p.MinParties < 0:
		return fmt.Errorf("%w: MinParties=%d", ErrBadParams, p.MinParties)
	case p.CacheBytes < 0:
		return fmt.Errorf("%w: CacheBytes=%d", ErrBadParams, p.CacheBytes)
	case p.CacheMaxStale < 0:
		return fmt.Errorf("%w: CacheMaxStale=%v", ErrBadParams, p.CacheMaxStale)
	case p.Shards < 0:
		return fmt.Errorf("%w: Shards=%d", ErrBadParams, p.Shards)
	case p.Replicas < 0:
		return fmt.Errorf("%w: Replicas=%d", ErrBadParams, p.Replicas)
	}
	return nil
}

// HeapCap returns the RTK cell capacity alpha*K.
func (p Params) HeapCap() int { return p.Alpha * p.K }

// Workers resolves the Parallelism knob to a concrete worker count for a
// workload of n independent tasks: 0 means runtime.GOMAXPROCS(0), and the
// result is clamped to [1, n].
func (p Params) Workers(n int) int {
	w := p.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Family constructs the shared hash family for these parameters from the
// federation seed (see hashutil.DeriveSeed / package keyex).
func (p Params) Family(seed uint64) (*hashutil.Family, error) {
	return hashutil.NewFamily(p.HashKind, p.Z, p.W, seed)
}

// Cost records the communication and computation cost of one protocol
// interaction, the quantities compared in Fig. 4 and Section VI-D.
type Cost struct {
	Messages      int   // request/response round trips
	BytesSent     int64 // querier -> owner payload bytes
	BytesReceived int64 // owner -> querier payload bytes
	SketchLookups int   // individual sketch cell lookups at the owner
}

// Add accumulates other into c.
func (c *Cost) Add(other Cost) {
	c.Messages += other.Messages
	c.BytesSent += other.BytesSent
	c.BytesReceived += other.BytesReceived
	c.SketchLookups += other.SketchLookups
}

// DocCount is one reverse top-K result: a document and its estimated
// term count.
type DocCount struct {
	DocID int
	Count float64
}
