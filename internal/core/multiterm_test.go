package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"csfltr/internal/dp"
	"csfltr/internal/sketch"
	"csfltr/internal/zipf"
)

func TestMultiTermExactRecovery(t *testing.T) {
	for _, kind := range []sketch.Kind{sketch.Count, sketch.CountMin} {
		p := testParams()
		p.SketchKind = kind
		q, o := newPair(t, p, nil)
		counts := map[uint64]int64{10: 4, 20: 7, 30: 2}
		if err := o.AddDocument(0, counts); err != nil {
			t.Fatal(err)
		}
		terms := []uint64{10, 20, 30}
		mq, priv := q.BuildMultiQuery(terms)
		resp, err := o.AnswerMultiTF(0, mq)
		if err != nil {
			t.Fatal(err)
		}
		got, err := q.RecoverSum(priv, resp)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-13) > 1e-9 {
			t.Fatalf("kind %v: sum = %v, want 13", kind, got)
		}
	}
}

func TestMultiTermSharedPV(t *testing.T) {
	p := testParams()
	q, _ := newPair(t, p, nil)
	mq, priv := q.BuildMultiQuery([]uint64{1, 2, 3})
	if len(mq.PerTerm) != 3 {
		t.Fatalf("per-term vectors = %d", len(mq.PerTerm))
	}
	if len(priv.PV) != p.Z1 {
		t.Fatalf("PV size = %d", len(priv.PV))
	}
	// Real columns of every term use the same PV rows.
	for ti, term := range priv.Terms {
		for _, a := range priv.PV {
			if mq.PerTerm[ti].Cols[a] != q.Family().Index(a, term) {
				t.Fatalf("term %d row %d: column is not the real hash", ti, a)
			}
		}
	}
	if mq.WireSize() != 3*int64(4*p.Z) {
		t.Fatalf("wire size = %d", mq.WireSize())
	}
}

func TestMultiTermErrors(t *testing.T) {
	p := testParams()
	q, o := newPair(t, p, nil)
	if err := o.AddDocument(0, map[uint64]int64{1: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := o.AnswerMultiTF(0, nil); !errors.Is(err, ErrBadQuery) {
		t.Fatal("nil query should error")
	}
	if _, err := o.AnswerMultiTF(0, &MultiTFQuery{}); !errors.Is(err, ErrBadQuery) {
		t.Fatal("empty query should error")
	}
	mq, priv := q.BuildMultiQuery([]uint64{1, 2})
	if _, err := o.AnswerMultiTF(99, mq); !errors.Is(err, ErrUnknownDoc) {
		t.Fatal("unknown doc should error")
	}
	if _, err := q.RecoverSum(priv, nil); !errors.Is(err, ErrBadQuery) {
		t.Fatal("nil response should error")
	}
	if _, err := q.RecoverSum(priv, &MultiTFResponse{PerTerm: make([]TFResponse, 1)}); !errors.Is(err, ErrBadQuery) {
		t.Fatal("term-count mismatch should error")
	}
	bad := &MultiTFResponse{PerTerm: []TFResponse{{Values: []float64{1}}, {Values: []float64{1}}}}
	if _, err := q.RecoverSum(priv, bad); !errors.Is(err, ErrBadQuery) {
		t.Fatal("short value vectors should error")
	}
}

// TestTheorem3Bound checks the multi-term error bound empirically: with
// z1 rows and DP noise, |f_q_hat - f_q| should stay within
// sqrt(16 l / eps^2 + 64 l / w * F2Res) with high probability.
func TestTheorem3Bound(t *testing.T) {
	p := testParams()
	p.W = 256
	p.Z = 15
	p.Z1 = 15
	p.Epsilon = 1.0
	rng := rand.New(rand.NewSource(21))
	mech, err := dp.ForEpsilon(p.Epsilon, rng)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQuerier(p, 42, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewOwner(p, 42, mech)
	if err != nil {
		t.Fatal(err)
	}
	dist := zipf.MustNew(2000, 1.1)
	counts := make(map[uint64]int64)
	for i := 0; i < 5000; i++ {
		counts[uint64(dist.Sample(rng))]++
	}
	if err := o.AddDocument(0, counts); err != nil {
		t.Fatal(err)
	}
	var freqs []float64
	for _, c := range counts {
		freqs = append(freqs, float64(c))
	}
	f2res := zipf.ResidualF2(freqs, p.W/8)

	terms := []uint64{1, 2, 3, 5}
	var truth float64
	for _, tm := range terms {
		truth += float64(counts[tm])
	}
	l := float64(len(terms))
	bound := math.Sqrt(16*l/(p.Epsilon*p.Epsilon) + 64*l/float64(p.W)*f2res)

	violations := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		mq, priv := q.BuildMultiQuery(terms)
		resp, err := o.AnswerMultiTF(0, mq)
		if err != nil {
			t.Fatal(err)
		}
		got, err := q.RecoverSum(priv, resp)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-truth) > bound {
			violations++
		}
	}
	if frac := float64(violations) / trials; frac > 0.05 {
		t.Fatalf("Theorem 3 bound violated in %.0f%% of trials (bound %.1f, truth %.0f)",
			frac*100, bound, truth)
	}
}

// TestMultiTermNoiseScaling: the multi-term estimator is unbiased under
// DP noise.
func TestMultiTermNoiseScaling(t *testing.T) {
	p := testParams()
	p.Epsilon = 0.5
	rng := rand.New(rand.NewSource(31))
	mech, _ := dp.ForEpsilon(p.Epsilon, rng)
	q, _ := newPair(t, p, nil)
	o, err := NewOwner(p, 42, mech)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.AddDocument(0, map[uint64]int64{7: 10, 8: 5}); err != nil {
		t.Fatal(err)
	}
	var sum float64
	const trials = 2000
	for i := 0; i < trials; i++ {
		mq, priv := q.BuildMultiQuery([]uint64{7, 8})
		resp, err := o.AnswerMultiTF(0, mq)
		if err != nil {
			t.Fatal(err)
		}
		got, err := q.RecoverSum(priv, resp)
		if err != nil {
			t.Fatal(err)
		}
		sum += got
	}
	if mean := sum / trials; math.Abs(mean-15) > 1 {
		t.Fatalf("noisy multi-term mean %v, want ~15", mean)
	}
}
