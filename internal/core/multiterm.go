package core

import (
	"fmt"

	"csfltr/internal/sketch"
)

// MultiTFQuery is the public part of a whole-query TF lookup: one
// obfuscated column vector per query term, sharing a single private index
// set. Section IV-C (Theorem 3) analyses exactly this estimator:
// f_q = median_{a in PV} sum_k C~(a, h_a(t_k)).
type MultiTFQuery struct {
	PerTerm []TFQuery
}

// WireSize returns the encoded size in bytes.
func (q *MultiTFQuery) WireSize() int64 {
	var n int64
	for i := range q.PerTerm {
		n += q.PerTerm[i].WireSize()
	}
	return n
}

// MultiTFPrivate is the querier-side recovery state for a multi-term
// query.
type MultiTFPrivate struct {
	Terms []uint64
	PV    []int
}

// MultiTFResponse carries the owner's perturbed lookups, one value per
// (term, row).
type MultiTFResponse struct {
	PerTerm []TFResponse
}

// WireSize returns the encoded size in bytes.
func (r *MultiTFResponse) WireSize() int64 {
	var n int64
	for i := range r.PerTerm {
		n += r.PerTerm[i].WireSize()
	}
	return n
}

// BuildMultiQuery obfuscates a whole query's terms with one shared
// private index set, so the per-row sums the owner cannot compute (it
// does not know PV) can be formed by the querier after recovery.
func (q *Querier) BuildMultiQuery(terms []uint64) (*MultiTFQuery, *MultiTFPrivate) {
	z := q.params.Z
	perm := q.rng.Perm(z)
	pv := append([]int(nil), perm[:q.params.Z1]...)
	sortInts(pv)
	inPV := make([]bool, z)
	for _, a := range pv {
		inPV[a] = true
	}
	out := &MultiTFQuery{PerTerm: make([]TFQuery, len(terms))}
	for ti, term := range terms {
		cols := make([]uint32, z)
		for a := 0; a < z; a++ {
			if inPV[a] {
				cols[a] = q.fam.Index(a, term)
			} else {
				cols[a] = q.fam.Index(a, q.rng.Uint64())
			}
		}
		out.PerTerm[ti] = TFQuery{Cols: cols}
	}
	return out, &MultiTFPrivate{Terms: append([]uint64(nil), terms...), PV: pv}
}

// AnswerMultiTF answers a multi-term TF query against one document: each
// term's columns are looked up and the whole response is perturbed with a
// single noise draw per term vector (each term's lookup is one Algorithm-2
// interaction).
func (o *Owner) AnswerMultiTF(docID int, q *MultiTFQuery) (*MultiTFResponse, error) {
	if q == nil || len(q.PerTerm) == 0 {
		return nil, fmt.Errorf("%w: empty multi-term query", ErrBadQuery)
	}
	out := &MultiTFResponse{PerTerm: make([]TFResponse, len(q.PerTerm))}
	for i := range q.PerTerm {
		resp, err := o.AnswerTF(docID, &q.PerTerm[i])
		if err != nil {
			return nil, err
		}
		out.PerTerm[i] = *resp
	}
	return out, nil
}

// RecoverSum combines a multi-term response into the estimate of the
// summed count of all query terms in the document, using Theorem 3's
// estimator: per private row, sum the sign-corrected per-term values,
// then take the median across rows (min for Count-Min).
func (q *Querier) RecoverSum(priv *MultiTFPrivate, resp *MultiTFResponse) (float64, error) {
	if resp == nil || len(resp.PerTerm) != len(priv.Terms) {
		return 0, fmt.Errorf("%w: response has %d term vectors, want %d",
			ErrBadQuery, multiLen(resp), len(priv.Terms))
	}
	rowSums := make([]float64, len(priv.PV))
	for ti, term := range priv.Terms {
		values := resp.PerTerm[ti].Values
		if len(values) != q.params.Z {
			return 0, fmt.Errorf("%w: term %d has %d values, want %d",
				ErrBadQuery, ti, len(values), q.params.Z)
		}
		for i, a := range priv.PV {
			v := values[a]
			if q.params.SketchKind == sketch.Count {
				v *= float64(q.fam.Sign(a, term))
			}
			rowSums[i] += v
		}
	}
	if q.params.SketchKind == sketch.CountMin {
		min := rowSums[0]
		for _, v := range rowSums[1:] {
			if v < min {
				min = v
			}
		}
		return min, nil
	}
	// rowSums is locally owned scratch, so the in-place selection avoids
	// Median's defensive copy.
	return sketch.MedianInPlace(rowSums), nil
}

func multiLen(r *MultiTFResponse) int {
	if r == nil {
		return 0
	}
	return len(r.PerTerm)
}
