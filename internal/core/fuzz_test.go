package core

import (
	"bytes"
	"testing"

	"csfltr/internal/dp"
)

// FuzzReadOwner hardens the owner-snapshot deserializer: arbitrary bytes
// must never panic, and any accepted snapshot must survive a re-snapshot
// round trip.
func FuzzReadOwner(f *testing.F) {
	p := DefaultParams()
	p.Z = 3
	p.W = 8
	p.Z1 = 2
	p.K = 2
	p.Alpha = 2
	p.Epsilon = 0
	o, err := NewOwner(p, 42, dp.Disabled())
	if err != nil {
		f.Fatal(err)
	}
	for id := 0; id < 3; id++ {
		if err := o.AddDocument(id, map[uint64]int64{uint64(id + 1): 2}); err != nil {
			f.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := o.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(buf.Bytes()[:20])
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadOwner(bytes.NewReader(data), dp.Disabled())
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("accepted owner failed to re-serialize: %v", err)
		}
		if _, err := ReadOwner(bytes.NewReader(out.Bytes()), dp.Disabled()); err != nil {
			t.Fatalf("re-serialized owner rejected: %v", err)
		}
	})
}

// FuzzRTKQueryHandling hardens the owner's query handlers against
// malformed column vectors.
func FuzzRTKQueryHandling(f *testing.F) {
	p := DefaultParams()
	p.Z = 4
	p.W = 16
	p.Z1 = 2
	p.K = 2
	p.Epsilon = 0
	o, err := NewOwner(p, 42, dp.Disabled())
	if err != nil {
		f.Fatal(err)
	}
	if err := o.AddDocument(0, map[uint64]int64{3: 2}); err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{255, 255})
	f.Fuzz(func(t *testing.T, raw []byte) {
		cols := make([]uint32, len(raw))
		for i, b := range raw {
			cols[i] = uint32(b)
		}
		q := &TFQuery{Cols: cols}
		// Both handlers must either answer or reject; never panic.
		if resp, err := o.AnswerRTK(q); err == nil {
			if len(resp.Cells) != p.Z {
				t.Fatal("accepted query answered with wrong geometry")
			}
		}
		if resp, err := o.AnswerTF(0, q); err == nil {
			if len(resp.Values) != p.Z {
				t.Fatal("accepted TF query answered with wrong geometry")
			}
		}
	})
}
