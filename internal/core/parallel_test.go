package core

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"csfltr/internal/dp"
	"csfltr/internal/sketch"
)

// quadraticZeroFill is the reference semantics of the zero-fill merge:
// for every private row, look the row up in the observation list (the
// O(z^2) loop the linear merge in mergeZeroFill replaced).
func quadraticZeroFill(pv, rows []int, vals []float64) []float64 {
	out := make([]float64, len(pv))
	for i, a := range pv {
		for j, r := range rows {
			if r == a {
				out[i] = vals[j]
				break
			}
		}
	}
	return out
}

func TestMergeZeroFill(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		// Random sorted private index set, then a random sorted
		// subsequence of observed rows — exactly the shape RTKWithPlan
		// produces (PV ascending, observations gathered in PV order).
		z := 1 + rng.Intn(40)
		pv := rng.Perm(64)[:z]
		sort.Ints(pv)
		var rows []int
		var vals []float64
		for _, a := range pv {
			if rng.Intn(2) == 0 {
				rows = append(rows, a)
				vals = append(vals, rng.NormFloat64()*10)
			}
		}
		want := quadraticZeroFill(pv, rows, vals)
		got := make([]float64, len(pv))
		// Dirty scratch: the merge must overwrite every slot.
		for i := range got {
			got[i] = math.Inf(1)
		}
		mergeZeroFill(pv, rows, vals, got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: pv=%v rows=%v\n got %v\nwant %v", trial, pv, rows, got, want)
		}
	}
}

// TestRTKZeroFillMatchesReference locks in that the linear zero-fill
// merge inside RTKWithPlan produces the same estimates as an independent
// quadratic reconstruction of the estimator from the raw RTK response.
func TestRTKZeroFillMatchesReference(t *testing.T) {
	p := testParams()
	p.Estimator = EstimatorZeroFill
	q, o := newPair(t, p, nil)
	rng := rand.New(rand.NewSource(3))
	for id := 0; id < 120; id++ {
		counts := make(map[uint64]int64)
		for j := 0; j < 12; j++ {
			counts[uint64(rng.Intn(200))]++
		}
		counts[7] = int64(rng.Intn(20)) // make term 7 broadly present
		if err := o.AddDocument(id, counts); err != nil {
			t.Fatal(err)
		}
	}
	plan := q.Plan(7)
	got, _, err := RTKWithPlan(plan, o, p.K)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: replay the owner response and estimate each candidate
	// with the quadratic per-row lookup.
	resp, err := o.AnswerRTK(plan.query)
	if err != nil {
		t.Fatal(err)
	}
	type obs struct {
		rows []int
		vals []float64
	}
	byDoc := make(map[int32]*obs)
	for _, a := range plan.priv.PV {
		cell := resp.Cells[a]
		for i, id := range cell.IDs {
			ob := byDoc[id]
			if ob == nil {
				ob = &obs{}
				byDoc[id] = ob
			}
			ob.rows = append(ob.rows, a)
			ob.vals = append(ob.vals, cell.Values[i])
		}
	}
	threshold := int(math.Ceil(p.Beta * float64(p.Z1)))
	if threshold < 1 {
		threshold = 1
	}
	var want []DocCount
	for id, ob := range byDoc {
		if len(ob.rows) < threshold {
			continue
		}
		vals := quadraticZeroFill(plan.priv.PV, ob.rows, ob.vals)
		est := sketch.EstimateFromRows(p.SketchKind, plan.fam, plan.priv.Term, plan.priv.PV, vals)
		want = append(want, DocCount{DocID: int(id), Count: est})
	}
	want = topK(want, p.K)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("zero-fill estimates diverged from reference:\n got %v\nwant %v", got, want)
	}
	if len(got) == 0 {
		t.Fatal("degenerate test: no candidates survived the soft intersection")
	}
}

// bulkBatch builds a deterministic batch of document term counts.
func bulkBatch(n, terms int, seed int64) []DocCounts {
	rng := rand.New(rand.NewSource(seed))
	docs := make([]DocCounts, n)
	for i := range docs {
		counts := make(map[uint64]int64)
		for j := 0; j < terms; j++ {
			counts[uint64(rng.Intn(500))]++
		}
		docs[i] = DocCounts{DocID: i, Counts: counts}
	}
	return docs
}

// TestAddDocumentsMatchesSequential: bulk ingestion at every pool size
// must leave the owner bit-identical to a sequential AddDocument loop —
// same document set, same metadata, same RTK-Sketch heap content, same
// query answers.
func TestAddDocumentsMatchesSequential(t *testing.T) {
	p := testParams()
	docs := bulkBatch(180, 15, 5)
	seq, err := NewOwner(p, 42, dp.Disabled())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		if err := seq.AddDocument(d.DocID, d.Counts); err != nil {
			t.Fatal(err)
		}
	}
	q, err := NewQuerier(p, 42, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	plans := []*Plan{q.Plan(3), q.Plan(77), q.Plan(401)}

	for _, workers := range []int{1, 2, 3, 8, 64} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			bulk, err := NewOwner(p, 42, dp.Disabled())
			if err != nil {
				t.Fatal(err)
			}
			// The unexported entry point skips the GOMAXPROCS clamp so
			// every pool size exercises a real multi-accumulator merge,
			// whatever the host's core count.
			if err := bulk.addDocuments(docs, workers); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq.DocIDs(), bulk.DocIDs()) {
				t.Fatal("document id sets differ")
			}
			for _, d := range docs {
				sl, su, err1 := seq.DocMeta(d.DocID)
				bl, bu, err2 := bulk.DocMeta(d.DocID)
				if err1 != nil || err2 != nil || sl != bl || su != bu {
					t.Fatalf("doc %d metadata differs: (%d,%d,%v) vs (%d,%d,%v)",
						d.DocID, sl, su, err1, bl, bu, err2)
				}
			}
			for _, plan := range plans {
				want, err := seq.AnswerRTK(plan.query)
				if err != nil {
					t.Fatal(err)
				}
				got, err := bulk.AnswerRTK(plan.query)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("AnswerRTK(term %d) differs between sequential and bulk(workers=%d)",
						plan.Term(), workers)
				}
				wantTF, err := seq.AnswerTF(docs[0].DocID, plan.query)
				if err != nil {
					t.Fatal(err)
				}
				gotTF, err := bulk.AnswerTF(docs[0].DocID, plan.query)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(wantTF, gotTF) {
					t.Fatalf("AnswerTF(term %d) differs", plan.Term())
				}
			}
		})
	}
}

// TestAddDocumentsReplayMatchesBulk: the retained legacy loader (boxed
// container/heap pushes) must produce exactly the same owner state as
// the accumulator loader and the public clamped path — that equivalence
// is what lets the experiments sweep use it as an in-run baseline.
func TestAddDocumentsReplayMatchesBulk(t *testing.T) {
	p := testParams()
	docs := bulkBatch(180, 15, 5)
	legacy, err := NewOwner(p, 42, dp.Disabled())
	if err != nil {
		t.Fatal(err)
	}
	if err := legacy.AddDocumentsReplay(docs); err != nil {
		t.Fatal(err)
	}
	bulk, err := NewOwner(p, 42, dp.Disabled())
	if err != nil {
		t.Fatal(err)
	}
	if err := bulk.AddDocuments(docs, 4); err != nil { // public path, clamped
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy.DocIDs(), bulk.DocIDs()) {
		t.Fatal("document id sets differ")
	}
	q, err := NewQuerier(p, 42, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for _, term := range []uint64{3, 77, 401} {
		plan := q.Plan(term)
		want, err := legacy.AnswerRTK(plan.query)
		if err != nil {
			t.Fatal(err)
		}
		got, err := bulk.AnswerRTK(plan.query)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("AnswerRTK(term %d) differs between legacy replay and bulk", term)
		}
	}
	if legacy.RTKSizeBytes() != bulk.RTKSizeBytes() {
		t.Fatal("RTK sizes differ between legacy replay and bulk")
	}
}

// TestAddDocumentsAtomicOnError: a bad batch must leave the owner
// completely unchanged — no partially-applied prefix.
func TestAddDocumentsAtomicOnError(t *testing.T) {
	p := testParams()
	o, err := NewOwner(p, 42, dp.Disabled())
	if err != nil {
		t.Fatal(err)
	}
	if err := o.AddDocument(5, map[uint64]int64{1: 2}); err != nil {
		t.Fatal(err)
	}

	// Batch colliding with an already-ingested id.
	bad := bulkBatch(10, 5, 9) // contains DocID 5
	if err := o.AddDocuments(bad, 4); err == nil {
		t.Fatal("expected duplicate-id error")
	}
	if got := o.DocIDs(); len(got) != 1 || got[0] != 5 {
		t.Fatalf("owner mutated by failed batch: ids=%v", got)
	}

	// In-batch duplicate.
	dup := []DocCounts{
		{DocID: 100, Counts: map[uint64]int64{1: 1}},
		{DocID: 100, Counts: map[uint64]int64{2: 1}},
	}
	if err := o.AddDocuments(dup, 2); err == nil {
		t.Fatal("expected in-batch duplicate error")
	}
	if got := o.DocIDs(); len(got) != 1 {
		t.Fatalf("owner mutated by failed batch: ids=%v", got)
	}

	// Empty batch is a no-op.
	if err := o.AddDocuments(nil, 4); err != nil {
		t.Fatal(err)
	}

	// A clean batch after a failure applies normally.
	clean := []DocCounts{{DocID: 6, Counts: map[uint64]int64{1: 1}}}
	if err := o.AddDocuments(clean, 4); err != nil {
		t.Fatal(err)
	}
	if got := o.DocIDs(); len(got) != 2 {
		t.Fatalf("clean batch not applied: ids=%v", got)
	}
}

// BenchmarkOwnerAddDocuments measures bulk ingestion over a batch-size
// by pool-size grid (sequential baseline first). On a single-core host
// the worker curve is flat — the public API clamps the pool to
// GOMAXPROCS — with real cores stage 1 (per-document hashing) scales.
func BenchmarkOwnerAddDocuments(b *testing.B) {
	p := DefaultParams()
	for _, size := range []int{100, 300, 1000} {
		docs := bulkBatch(size, 60, 1)
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("docs=%d/workers=%d", size, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					o, err := NewOwner(p, 42, dp.Disabled())
					if err != nil {
						b.Fatal(err)
					}
					if err := o.AddDocuments(docs, workers); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// TestAddDocumentsPooledAllocs pins the scratch-pooling contract: once
// the accumulator pool and the heaps are warm, steady-state ingestion
// allocates a small constant per document (metadata map entries, roster
// growth) — not the per-document sketch tables and boxed heap entries
// of the legacy path (~16k allocations per document on the eviction
// shape).
func TestAddDocumentsPooledAllocs(t *testing.T) {
	p := DefaultParams()
	p.Z, p.W, p.Z1, p.K = 8, 64, 4, 20 // small geometry keeps the test fast
	o, err := NewOwner(p, 42, dp.Disabled(), WithoutDocTables())
	if err != nil {
		t.Fatal(err)
	}
	if err := o.AddDocuments(bulkBatch(200, 40, 3), 1); err != nil {
		t.Fatal(err)
	}
	batch := bulkBatch(50, 40, 4)
	for i := range batch {
		batch[i].DocID += 10_000 // disjoint from the warm-up roster
	}
	perRun := testing.AllocsPerRun(5, func() {
		if err := o.AddDocuments(batch, 1); err != nil {
			t.Fatal(err)
		}
		for _, d := range batch {
			if err := o.RemoveDocument(d.DocID); err != nil {
				t.Fatal(err)
			}
		}
	})
	if perDoc := perRun / float64(len(batch)); perDoc > 12 {
		t.Fatalf("steady-state ingest allocates %.1f/doc (run %.0f), want <= 12", perDoc, perRun)
	}
}

// BenchmarkOwnerRemoveDocument measures single-document removal on a
// 10k-document owner — the swap-delete via the position index that
// replaced the O(n) roster scan. Each iteration removes and re-adds one
// document so the roster size stays fixed.
func BenchmarkOwnerRemoveDocument(b *testing.B) {
	p := DefaultParams()
	o, err := NewOwner(p, 42, dp.Disabled(), WithoutDocTables())
	if err != nil {
		b.Fatal(err)
	}
	if err := o.AddDocuments(bulkBatch(10_000, 10, 1), 1); err != nil {
		b.Fatal(err)
	}
	victim := bulkBatch(1, 10, 2)
	victim[0].DocID = 20_000
	if err := o.AddDocuments(victim, 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := o.RemoveDocument(victim[0].DocID); err != nil {
			b.Fatal(err)
		}
		if err := o.AddDocuments(victim, 1); err != nil {
			b.Fatal(err)
		}
	}
}
