package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"csfltr/internal/dp"
)

// median returns the median of xs (copy-based).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// TestTheorem1ProtocolDP statistically verifies Theorem 1 at the protocol
// level: for neighbouring documents d, d' differing in ONE term, the
// distribution of the estimator output must satisfy
// Pr[A(d') = o] <= e^eps * Pr[A(d) = o] (up to sampling slack).
//
// The estimator under test is the paper's Eq. (6): the UNSIGNED median of
// the perturbed cell values over the private rows — the quantity
// Theorem 1 actually analyses. (A reproduction finding, recorded in
// EXPERIMENTS.md: the sign-corrected Count Sketch recovery that package
// sketch uses for accuracy does NOT inherit the same single-shared-draw
// bound, because the median mixes +N and -N copies of the shared noise
// and partially cancels it; queriers needing the strict Theorem 1
// guarantee should use the unsigned median below.)
func TestTheorem1ProtocolDP(t *testing.T) {
	p := testParams()
	p.Epsilon = 0.8
	p.W = 64 // moderate width: the 1/w collision term in the proof is real

	base := map[uint64]int64{10: 4, 20: 2, 30: 7, 40: 1}
	neighbor := map[uint64]int64{10: 4, 20: 2, 30: 7, 40: 1, 99: 1} // one extra term

	sample := func(doc map[uint64]int64, probe uint64, trials int, seed int64) []float64 {
		rng := rand.New(rand.NewSource(seed))
		mech, err := dp.ForEpsilon(p.Epsilon, rng)
		if err != nil {
			t.Fatal(err)
		}
		o, err := NewOwner(p, 42, mech)
		if err != nil {
			t.Fatal(err)
		}
		if err := o.AddDocument(0, doc); err != nil {
			t.Fatal(err)
		}
		q, err := NewQuerier(p, 42, rand.New(rand.NewSource(seed+1)))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, trials)
		for i := range out {
			query, priv := q.BuildQuery(probe)
			resp, err := o.AnswerTF(0, query)
			if err != nil {
				t.Fatal(err)
			}
			// Paper Eq. (6): unsigned median over the private rows.
			vals := make([]float64, len(priv.PV))
			for j, a := range priv.PV {
				vals[j] = resp.Values[a]
			}
			out[i] = median(vals)
		}
		return out
	}

	// The adversarial querier probes an arbitrary term (we test both the
	// differing term itself and an unrelated one).
	for _, probe := range []uint64{99, 10} {
		const trials = 120000
		a := sample(base, probe, trials, 100)
		b := sample(neighbor, probe, trials, 200)

		// Histogram both output distributions on a shared grid.
		const bins = 30
		lo, hi := -4.0, 9.0
		ha := make([]float64, bins)
		hb := make([]float64, bins)
		binOf := func(x float64) int {
			i := int((x - lo) / (hi - lo) * bins)
			if i < 0 {
				i = 0
			}
			if i >= bins {
				i = bins - 1
			}
			return i
		}
		for i := 0; i < trials; i++ {
			ha[binOf(a[i])]++
			hb[binOf(b[i])]++
		}
		bound := math.Exp(p.Epsilon) * 1.3 // sampling slack
		for i := 0; i < bins; i++ {
			if ha[i] < 300 || hb[i] < 300 {
				continue // too little mass for a stable ratio estimate
			}
			r := hb[i] / ha[i]
			if r < 1 {
				r = 1 / r
			}
			if r > bound {
				t.Fatalf("probe %d bin %d: output ratio %.2f exceeds e^eps=%.2f",
					probe, i, r, math.Exp(p.Epsilon))
			}
		}
	}
}

// TestObfuscationHidesQueryTerm: across repeated queries for the SAME
// term, each row's transmitted column index must take many different
// values (decoys), so the server cannot identify the real column by
// looking at any single query — and the real column must not dominate
// the distribution beyond its expected z1/z share.
func TestObfuscationHidesQueryTerm(t *testing.T) {
	p := testParams() // z=9, z1=5
	q, _ := newPair(t, p, nil)
	const term = uint64(4242)
	const trials = 3000
	counts := make([]map[uint32]int, p.Z)
	for a := range counts {
		counts[a] = make(map[uint32]int)
	}
	for i := 0; i < trials; i++ {
		query, _ := q.BuildQuery(term)
		for a, col := range query.Cols {
			counts[a][col]++
		}
	}
	for a := 0; a < p.Z; a++ {
		real := q.Family().Index(a, term)
		if len(counts[a]) < 50 {
			t.Fatalf("row %d: only %d distinct columns transmitted; decoys missing", a, len(counts[a]))
		}
		share := float64(counts[a][real]) / trials
		want := float64(p.Z1) / float64(p.Z) // rows carry the real hash when a in PV
		if math.Abs(share-want) > 0.05 {
			t.Fatalf("row %d: real column share %.3f, want ~%.3f", a, share, want)
		}
	}
}

// TestSingleNoiseDrawPerResponse: Algorithm 2 samples ONE Laplace noise
// for all z values of a response; the pairwise differences of the
// returned values must therefore be noise-free integers.
func TestSingleNoiseDrawPerResponse(t *testing.T) {
	p := testParams()
	p.Epsilon = 0.5
	rng := rand.New(rand.NewSource(77))
	mech, _ := dp.ForEpsilon(p.Epsilon, rng)
	o, err := NewOwner(p, 42, mech)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.AddDocument(0, map[uint64]int64{5: 3}); err != nil {
		t.Fatal(err)
	}
	q, _ := newPair(t, p, nil)
	query, _ := q.BuildQuery(5)
	resp, err := o.AnswerTF(0, query)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(resp.Values); i++ {
		diff := resp.Values[i] - resp.Values[0]
		if math.Abs(diff-math.Round(diff)) > 1e-9 {
			t.Fatalf("values %d and 0 differ by non-integer %v; noise was drawn per value", i, diff)
		}
	}
	// And the values themselves must NOT be integers (noise was applied).
	nonInteger := false
	for _, v := range resp.Values {
		if math.Abs(v-math.Round(v)) > 1e-9 {
			nonInteger = true
		}
	}
	if !nonInteger {
		t.Fatal("no noise visible in the response at eps=0.5")
	}
}
