package core

import (
	"container/heap"
	"fmt"

	"csfltr/internal/sketch"
)

// boxedCell adapts one RTK cell to container/heap.Interface — the shape
// of the original bulk loader. Every heap.Push and heap.Pop round-trips
// an Entry through an interface value, the boxing that made the old
// loader allocate roughly twice per cell per document (~13M allocations
// for a 1200-document batch at default geometry).
type boxedCell struct{ h *cellHeap }

func (b *boxedCell) Len() int           { return len(b.h.entries) }
func (b *boxedCell) Less(i, j int) bool { return b.h.less(b.h.entries[i], b.h.entries[j]) }
func (b *boxedCell) Swap(i, j int) {
	es := b.h.entries
	es[i], es[j] = es[j], es[i]
}
func (b *boxedCell) Push(x any) { b.h.entries = append(b.h.entries, x.(Entry)) }
func (b *boxedCell) Pop() any {
	es := b.h.entries
	e := es[len(es)-1]
	b.h.entries = es[:len(es)-1]
	return e
}

// AddDocumentsReplay bulk-loads a batch with the original pre-accumulator
// ingestion strategy: a fresh sketch table per document and boxed
// container/heap pushes into every cell ("push then pop the minimum" on
// overflow). The eviction order is the same strict total order as the
// current loader, so the final owner state is identical to AddDocuments
// over the same batch — which is exactly why it is kept: benchmarks and
// the experiments sweep measure the current loader against the real
// legacy cost profile in the same run, and can verify equivalence while
// doing so.
//
// Deprecated: use AddDocuments. This is a measured reference baseline,
// not a supported ingestion path.
func (o *Owner) AddDocumentsReplay(docs []DocCounts) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(docs) == 0 {
		return nil
	}
	inBatch := make(map[int]struct{}, len(docs))
	for _, d := range docs {
		if _, dup := o.meta[d.DocID]; dup {
			return fmt.Errorf("core: duplicate document id %d", d.DocID)
		}
		if _, dup := inBatch[d.DocID]; dup {
			return fmt.Errorf("core: duplicate document id %d", d.DocID)
		}
		inBatch[d.DocID] = struct{}{}
	}
	z, w := o.params.Z, o.params.W
	heapCap := o.params.HeapCap()
	// container/heap assumes the invariant holds at all times, but cells
	// below capacity are plain append buffers on the current push path;
	// establish the invariant once up front.
	for c := range o.rtk.cells {
		if h := &o.rtk.cells[c]; len(h.entries) > 1 {
			h.heapify()
		}
	}
	for _, d := range docs {
		table, err := sketch.New(o.params.SketchKind, o.fam)
		if err != nil {
			return err
		}
		table.AddCounts(d.Counts)
		id := int32(d.DocID)
		for i := 0; i < z; i++ {
			for j := 0; j < w; j++ {
				bc := boxedCell{h: &o.rtk.cells[i*w+j]}
				heap.Push(&bc, Entry{DocID: id, Value: table.Cell(i, uint32(j))})
				if len(bc.h.entries) > heapCap {
					heap.Pop(&bc)
				}
			}
		}
		if o.keepDocTables {
			o.docTables[d.DocID] = table
		}
		length := 0
		for _, c := range d.Counts {
			length += int(c)
		}
		o.meta[d.DocID] = docMeta{length: length, unique: len(d.Counts)}
		o.trackID(d.DocID)
		o.rtk.docs++
	}
	// The boxed pushes bypass the cached floor keys; refresh them so the
	// fast-reject on any later push sees the true cell minimum.
	for c := range o.rtk.cells {
		if h := &o.rtk.cells[c]; len(h.entries) > 0 {
			h.minKey = h.key(h.entries[0])
		}
	}
	o.idsSorted = false
	o.generation.Add(1)
	return nil
}
