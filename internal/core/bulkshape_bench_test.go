package core

import (
	"testing"

	"csfltr/internal/dp"
)

// BenchmarkOwnerAddDocumentsEviction exercises the eviction-heavy regime
// used by the experiments sweep (heap cap 250, 1200 docs), where cells
// fill early and most pushes contend with the cached floor key.
func BenchmarkOwnerAddDocumentsEviction(b *testing.B) {
	p := DefaultParams()
	p.K = 50 // HeapCap = Alpha*K = 250, well under the 1200-doc batch
	docs := bulkBatch(1200, 120, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o, err := NewOwner(p, 42, dp.Disabled())
		if err != nil {
			b.Fatal(err)
		}
		if err := o.AddDocuments(docs, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOwnerAddDocumentsLegacy measures the retained reference
// loader (boxed container/heap pushes, fresh table per document) on the
// same eviction-heavy shape — the denominator of the ingest speedup the
// experiments sweep reports.
func BenchmarkOwnerAddDocumentsLegacy(b *testing.B) {
	p := DefaultParams()
	p.K = 50
	docs := bulkBatch(1200, 120, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o, err := NewOwner(p, 42, dp.Disabled())
		if err != nil {
			b.Fatal(err)
		}
		if err := o.AddDocumentsReplay(docs); err != nil {
			b.Fatal(err)
		}
	}
}
