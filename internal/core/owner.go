package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"csfltr/internal/dp"
	"csfltr/internal/hashutil"
	"csfltr/internal/sketch"
)

// RTKCell is one row's heap content in an RTK query response: parallel
// slices of document ids and their (perturbed) cell values.
type RTKCell struct {
	IDs    []int32
	Values []float64
}

// RTKResponse is the owner's answer to a reverse top-K query: the heap
// content of the cell the (obfuscated) term hashes to in every row.
type RTKResponse struct {
	Cells []RTKCell
}

// WireSize returns the encoded size in bytes (12 bytes per entry), used
// for communication accounting.
func (r *RTKResponse) WireSize() int64 {
	var n int64
	for _, c := range r.Cells {
		n += int64(12 * len(c.IDs))
	}
	return n
}

// OwnerAPI is the document-owner endpoint of the reverse top-K protocols.
// Owner implements it in-process; package federation implements it over a
// transport through the coordinating server.
type OwnerAPI interface {
	// DocIDs lists the owner's document ids (non-private metadata).
	DocIDs() []int
	// DocMeta returns the non-private length metadata of a document
	// (body length and unique term count; Definition 2 treats length as
	// shareable).
	DocMeta(docID int) (length, unique int, err error)
	// AnswerTF answers a cross-party TF query against one document
	// (Algorithm 2).
	AnswerTF(docID int, q *TFQuery) (*TFResponse, error)
	// AnswerRTK returns the RTK-Sketch cells addressed by the query
	// (owner side of Algorithm 5).
	AnswerRTK(q *TFQuery) (*RTKResponse, error)
}

// docMeta is the retained non-private metadata per document.
type docMeta struct {
	length int
	unique int
}

// Owner is the in-process document-owner endpoint: it maintains one
// standard sketch per document (Section IV, for TF queries and the NAIVE
// baseline) and one RTK-Sketch across all documents (Section V). All
// query answers are perturbed by the configured DP mechanism before they
// leave the owner.
//
// Owner is safe for concurrent use: ingestion and query answering are
// serialized by an internal mutex (the RPC transport serves connections
// concurrently, and the DP mechanism's random source is not itself
// thread-safe).
type Owner struct {
	mu            sync.Mutex
	params        Params
	fam           *hashutil.Family
	mech          dp.Mechanism
	keepDocTables bool
	docTables     map[int]*sketch.Table
	meta          map[int]docMeta
	rtk           *RTKSketch
	ids           []int
	idPos         map[int]int // docID -> index in ids (kept in sync with ids)
	idsSorted     bool
	// generation counts corpus mutations (atomic so readers need not
	// take the owner mutex); see Generation.
	generation atomic.Uint64
}

// OwnerOption customizes Owner construction.
type OwnerOption func(*Owner)

// WithoutDocTables drops per-document sketches after they are folded into
// the RTK-Sketch, reducing memory from O(n*z*w) to the RTK footprint.
// AnswerTF (and therefore the NAIVE baseline) becomes unavailable.
func WithoutDocTables() OwnerOption {
	return func(o *Owner) { o.keepDocTables = false }
}

// NewOwner builds an owner endpoint with the shared parameters and hash
// seed. mech is the DP mechanism applied to every outgoing answer; pass
// dp.Disabled() to reproduce the paper's epsilon=0 configuration.
func NewOwner(params Params, seed uint64, mech dp.Mechanism, opts ...OwnerOption) (*Owner, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if mech == nil {
		return nil, fmt.Errorf("%w: nil DP mechanism", ErrBadParams)
	}
	fam, err := params.Family(seed)
	if err != nil {
		return nil, err
	}
	rtk, err := NewRTKSketch(params, fam)
	if err != nil {
		return nil, err
	}
	o := &Owner{
		params:        params,
		fam:           fam,
		mech:          mech,
		keepDocTables: true,
		docTables:     make(map[int]*sketch.Table),
		meta:          make(map[int]docMeta),
		rtk:           rtk,
		idPos:         make(map[int]int),
	}
	for _, opt := range opts {
		opt(o)
	}
	return o, nil
}

// Params returns the shared protocol parameters.
func (o *Owner) Params() Params { return o.params }

// Family returns the shared hash family.
func (o *Owner) Family() *hashutil.Family { return o.fam }

// RTK exposes the owner's RTK-Sketch (e.g. for space accounting).
func (o *Owner) RTK() *RTKSketch { return o.rtk }

// Generation returns the owner's ingest generation: a counter bumped by
// every corpus mutation (AddDocument, one bump per AddDocuments batch,
// RemoveDocument). Query answers cached under one generation are
// invalid for any later one — the federated answer cache folds this
// value into its keys so ingestion naturally invalidates stale entries.
func (o *Owner) Generation() uint64 { return o.generation.Load() }

// AddDocument ingests a document given its term counts (Step 1 of the
// protocol: sketch construction). unique and the total length are
// derived from counts.
func (o *Owner) AddDocument(docID int, counts map[uint64]int64) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, dup := o.meta[docID]; dup {
		return fmt.Errorf("core: duplicate document id %d", docID)
	}
	table, err := sketch.New(o.params.SketchKind, o.fam)
	if err != nil {
		return err
	}
	length := 0
	for _, c := range counts {
		length += int(c)
	}
	table.AddCounts(counts)
	if err := o.rtk.Update(docID, table); err != nil {
		return err
	}
	if o.keepDocTables {
		o.docTables[docID] = table
	}
	o.meta[docID] = docMeta{length: length, unique: len(counts)}
	o.trackID(docID)
	o.idsSorted = false
	o.generation.Add(1)
	return nil
}

// trackID appends docID to the id roster and records its position so
// RemoveDocument can swap-delete it without scanning. Callers hold o.mu.
func (o *Owner) trackID(docID int) {
	o.idPos[docID] = len(o.ids)
	o.ids = append(o.ids, docID)
}

// sortIDs sorts the roster ascending and refreshes the position index.
// Callers hold o.mu.
func (o *Owner) sortIDs() {
	if o.idsSorted {
		return
	}
	sort.Ints(o.ids)
	for i, id := range o.ids {
		o.idPos[id] = i
	}
	o.idsSorted = true
}

// DocCounts pairs a document id with its term counts — one unit of a
// bulk-ingestion batch.
type DocCounts struct {
	DocID  int
	Counts map[uint64]int64
}

// AddDocuments bulk-loads a batch of documents on a bounded worker pool
// (workers <= 0 resolves to Params.Workers, i.e. GOMAXPROCS by default).
// The final owner state is identical to calling AddDocument for each
// element: every worker folds its contiguous document stripe into a
// private accumulator (building and hashing the per-document sketch
// tables as it goes — the table is pooled scratch unless the owner
// retains per-document sketches), then one deterministic merge pass
// folds the stripe survivors into the shared RTK-Sketch with the rows
// partitioned across workers. Eviction is a strict total order, so the
// surviving entries per cell depend only on the document set, never on
// the stripe boundaries or merge interleaving (see cellHeap).
//
// On error (duplicate id, geometry mismatch) the owner is left unchanged;
// unlike a sequential AddDocument loop there is no partially-applied
// prefix.
func (o *Owner) AddDocuments(docs []DocCounts, workers int) error {
	// Ingestion is CPU-bound: a pool wider than the machine only adds
	// stripe bookkeeping and a larger merge, so explicit pool sizes are
	// clamped to GOMAXPROCS. The unexported addDocuments keeps the
	// requested width so equivalence tests can force real
	// multi-accumulator merges on any host.
	if mp := runtime.GOMAXPROCS(0); workers > mp {
		workers = mp
	}
	return o.addDocuments(docs, workers)
}

func (o *Owner) addDocuments(docs []DocCounts, workers int) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(docs) == 0 {
		return nil
	}
	inBatch := make(map[int]struct{}, len(docs))
	for _, d := range docs {
		if _, dup := o.meta[d.DocID]; dup {
			return fmt.Errorf("core: duplicate document id %d", d.DocID)
		}
		if _, dup := inBatch[d.DocID]; dup {
			return fmt.Errorf("core: duplicate document id %d", d.DocID)
		}
		inBatch[d.DocID] = struct{}{}
	}
	if workers <= 0 {
		workers = o.params.Workers(len(docs))
	}
	if workers > len(docs) {
		workers = len(docs)
	}

	var tables []*sketch.Table
	if o.keepDocTables {
		tables = make([]*sketch.Table, len(docs))
	}

	if workers == 1 {
		// Single-worker fast path: fold each document's table straight
		// into the RTK-Sketch. The stripe/merge split exists to give
		// concurrent workers private state; at pool size one it would
		// only copy every surviving entry a second time.
		if err := o.bulkFold1(docs, tables); err != nil {
			return err
		}
	} else if err := o.bulkFoldStriped(docs, tables, workers); err != nil {
		return err
	}
	o.rtk.addDocs(len(docs))

	// Metadata, in slice order.
	for i, d := range docs {
		length := 0
		for _, c := range d.Counts {
			length += int(c)
		}
		if o.keepDocTables {
			o.docTables[d.DocID] = tables[i]
		}
		o.meta[d.DocID] = docMeta{length: length, unique: len(d.Counts)}
		o.trackID(d.DocID)
	}
	o.idsSorted = false
	o.generation.Add(1)
	return nil
}

// bulkFold1 is the single-worker bulk fold: each document's table goes
// straight into the shared RTK-Sketch, with one pooled scratch table
// reused across the whole batch when per-document sketches are not
// retained. Callers hold o.mu and have validated the batch. The only
// error source is sketch.New, a pure function of the owner's parameters:
// it fails before the first fold or never, so a failure leaves the owner
// unmutated.
func (o *Owner) bulkFold1(docs []DocCounts, tables []*sketch.Table) error {
	z := o.params.Z
	var scratch *sketch.Table
	for i := range docs {
		t := scratch
		if t == nil {
			var err error
			if t, err = sketch.New(o.params.SketchKind, o.fam); err != nil {
				return err
			}
		} else {
			t.Reset()
		}
		t.AddCounts(docs[i].Counts)
		o.rtk.updateRows(docs[i].DocID, t, 0, z)
		if tables != nil {
			tables[i] = t
		} else {
			scratch = t
		}
	}
	return nil
}

// bulkFoldStriped is the concurrent bulk fold: stage 1 folds each
// worker's document stripe into a private accumulator, stage 2 merges
// the stripe survivors into the shared sketch with the rows partitioned
// across the pool. Callers hold o.mu and have validated the batch;
// nothing on the owner is mutated until every stripe has succeeded.
func (o *Owner) bulkFoldStriped(docs []DocCounts, tables []*sketch.Table, workers int) error {
	// Stage 1: each worker folds its document stripe into a private
	// accumulator. Nothing is mutated on the owner yet, so a failure here
	// aborts cleanly. A stripe of s documents pushes exactly s entries
	// per cell, so the accumulator cap is min(heapCap, stripe size).
	z, w := o.params.Z, o.params.W
	heapCap := o.params.HeapCap()
	abs := o.params.SketchKind == sketch.Count
	accums := make([]*rtkAccum, workers)
	errs := make([]error, workers)
	stripe := func(wk, lo, hi int) {
		acap := heapCap
		if n := hi - lo; n < acap {
			acap = n
		}
		acc := getAccum(z*w, acap, abs)
		accums[wk] = acc
		var scratch *sketch.Table
		for i := lo; i < hi; i++ {
			t := scratch
			if t == nil {
				var err error
				if t, err = sketch.New(o.params.SketchKind, o.fam); err != nil {
					errs[wk] = err
					return
				}
			} else {
				t.Reset()
			}
			t.AddCounts(docs[i].Counts)
			acc.addTable(docs[i].DocID, t, z, w)
			if tables != nil {
				tables[i] = t
			} else {
				scratch = t
			}
		}
	}
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		lo := wk * len(docs) / workers
		hi := (wk + 1) * len(docs) / workers
		wg.Add(1)
		go func(wk, lo, hi int) {
			defer wg.Done()
			stripe(wk, lo, hi)
		}(wk, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, a := range accums {
				putAccum(a)
			}
			return err
		}
	}

	// Stage 2: the single merge pass, rows sharded across the pool
	// (disjoint row bands never touch the same heap; the merged set per
	// cell is order-independent, see mergeAccumRows).
	bands := workers
	if bands > z {
		bands = z
	}
	if bands == 1 {
		o.rtk.mergeAccumRows(accums, 0, z)
	} else {
		var mg sync.WaitGroup
		for b := 0; b < bands; b++ {
			lo := b * z / bands
			hi := (b + 1) * z / bands
			mg.Add(1)
			go func(lo, hi int) {
				defer mg.Done()
				o.rtk.mergeAccumRows(accums, lo, hi)
			}(lo, hi)
		}
		mg.Wait()
	}
	for _, a := range accums {
		putAccum(a)
	}
	return nil
}

// RemoveDocument deletes a document from the RTK-Sketch and drops its
// sketch and metadata.
func (o *Owner) RemoveDocument(docID int) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.meta[docID]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownDoc, docID)
	}
	o.rtk.Delete(docID)
	delete(o.docTables, docID)
	delete(o.meta, docID)
	// Swap-delete via the position index instead of the old O(n)
	// scan-and-splice of the roster; re-sorting is deferred to the next
	// DocIDs call, like after an insertion.
	i := o.idPos[docID]
	last := len(o.ids) - 1
	if i != last {
		moved := o.ids[last]
		o.ids[i] = moved
		o.idPos[moved] = i
		o.idsSorted = false
	}
	o.ids = o.ids[:last]
	delete(o.idPos, docID)
	o.generation.Add(1)
	return nil
}

// DocIDs returns the owner's document ids in ascending order.
func (o *Owner) DocIDs() []int {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.sortIDs()
	return append([]int(nil), o.ids...)
}

// DocMeta returns the non-private length metadata of a document.
func (o *Owner) DocMeta(docID int) (length, unique int, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	m, ok := o.meta[docID]
	if !ok {
		return 0, 0, fmt.Errorf("%w: %d", ErrUnknownDoc, docID)
	}
	return m.length, m.unique, nil
}

// AnswerTF implements Algorithm 2: look up the queried column in every
// row of the document's sketch and perturb all z results with a single
// noise draw before responding.
func (o *Owner) AnswerTF(docID int, q *TFQuery) (*TFResponse, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.keepDocTables {
		return nil, ErrNoSketches
	}
	table, ok := o.docTables[docID]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownDoc, docID)
	}
	if q == nil || len(q.Cols) != o.params.Z {
		return nil, fmt.Errorf("%w: query has %d columns, want %d", ErrBadQuery, qLen(q), o.params.Z)
	}
	raw, err := table.LookupColumns(q.Cols)
	if err != nil {
		return nil, err
	}
	noise := o.mech.Sample() // one draw for all z values, as in Algorithm 2
	vals := make([]float64, len(raw))
	for i, v := range raw {
		vals[i] = float64(v) + noise
	}
	return &TFResponse{Values: vals}, nil
}

// AnswerRTK implements the owner side of Algorithm 5: return the heap
// content of the addressed cell in every row, counts perturbed with a
// single noise draw.
func (o *Owner) AnswerRTK(q *TFQuery) (*RTKResponse, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if q == nil || len(q.Cols) != o.params.Z {
		return nil, fmt.Errorf("%w: query has %d columns, want %d", ErrBadQuery, qLen(q), o.params.Z)
	}
	noise := o.mech.Sample()
	cells := make([]RTKCell, o.params.Z)
	for a := 0; a < o.params.Z; a++ {
		if q.Cols[a] >= uint32(o.params.W) {
			return nil, fmt.Errorf("%w: column %d out of range", ErrBadQuery, q.Cols[a])
		}
		entries := o.rtk.Cell(a, q.Cols[a])
		cell := RTKCell{
			IDs:    make([]int32, len(entries)),
			Values: make([]float64, len(entries)),
		}
		for i, e := range entries {
			cell.IDs[i] = e.DocID
			cell.Values[i] = float64(e.Value) + noise
		}
		cells[a] = cell
	}
	return &RTKResponse{Cells: cells}, nil
}

// NaiveSizeBytes returns the owner-side memory of the per-document
// sketches (the NAIVE baseline's space cost).
func (o *Owner) NaiveSizeBytes() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	var n int64
	for _, t := range o.docTables {
		n += int64(t.SizeBytes())
	}
	return n
}

// RTKSizeBytes returns the RTK-Sketch memory footprint.
func (o *Owner) RTKSizeBytes() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.rtk.SizeBytes()
}

func qLen(q *TFQuery) int {
	if q == nil {
		return 0
	}
	return len(q.Cols)
}
