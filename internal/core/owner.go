package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"csfltr/internal/dp"
	"csfltr/internal/hashutil"
	"csfltr/internal/sketch"
)

// RTKCell is one row's heap content in an RTK query response: parallel
// slices of document ids and their (perturbed) cell values.
type RTKCell struct {
	IDs    []int32
	Values []float64
}

// RTKResponse is the owner's answer to a reverse top-K query: the heap
// content of the cell the (obfuscated) term hashes to in every row.
type RTKResponse struct {
	Cells []RTKCell
}

// WireSize returns the encoded size in bytes (12 bytes per entry), used
// for communication accounting.
func (r *RTKResponse) WireSize() int64 {
	var n int64
	for _, c := range r.Cells {
		n += int64(12 * len(c.IDs))
	}
	return n
}

// OwnerAPI is the document-owner endpoint of the reverse top-K protocols.
// Owner implements it in-process; package federation implements it over a
// transport through the coordinating server.
type OwnerAPI interface {
	// DocIDs lists the owner's document ids (non-private metadata).
	DocIDs() []int
	// DocMeta returns the non-private length metadata of a document
	// (body length and unique term count; Definition 2 treats length as
	// shareable).
	DocMeta(docID int) (length, unique int, err error)
	// AnswerTF answers a cross-party TF query against one document
	// (Algorithm 2).
	AnswerTF(docID int, q *TFQuery) (*TFResponse, error)
	// AnswerRTK returns the RTK-Sketch cells addressed by the query
	// (owner side of Algorithm 5).
	AnswerRTK(q *TFQuery) (*RTKResponse, error)
}

// docMeta is the retained non-private metadata per document.
type docMeta struct {
	length int
	unique int
}

// Owner is the in-process document-owner endpoint: it maintains one
// standard sketch per document (Section IV, for TF queries and the NAIVE
// baseline) and one RTK-Sketch across all documents (Section V). All
// query answers are perturbed by the configured DP mechanism before they
// leave the owner.
//
// Owner is safe for concurrent use: ingestion and query answering are
// serialized by an internal mutex (the RPC transport serves connections
// concurrently, and the DP mechanism's random source is not itself
// thread-safe).
type Owner struct {
	mu            sync.Mutex
	params        Params
	fam           *hashutil.Family
	mech          dp.Mechanism
	keepDocTables bool
	docTables     map[int]*sketch.Table
	meta          map[int]docMeta
	rtk           *RTKSketch
	ids           []int
	idsSorted     bool
	// generation counts corpus mutations (atomic so readers need not
	// take the owner mutex); see Generation.
	generation atomic.Uint64
}

// OwnerOption customizes Owner construction.
type OwnerOption func(*Owner)

// WithoutDocTables drops per-document sketches after they are folded into
// the RTK-Sketch, reducing memory from O(n*z*w) to the RTK footprint.
// AnswerTF (and therefore the NAIVE baseline) becomes unavailable.
func WithoutDocTables() OwnerOption {
	return func(o *Owner) { o.keepDocTables = false }
}

// NewOwner builds an owner endpoint with the shared parameters and hash
// seed. mech is the DP mechanism applied to every outgoing answer; pass
// dp.Disabled() to reproduce the paper's epsilon=0 configuration.
func NewOwner(params Params, seed uint64, mech dp.Mechanism, opts ...OwnerOption) (*Owner, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if mech == nil {
		return nil, fmt.Errorf("%w: nil DP mechanism", ErrBadParams)
	}
	fam, err := params.Family(seed)
	if err != nil {
		return nil, err
	}
	rtk, err := NewRTKSketch(params, fam)
	if err != nil {
		return nil, err
	}
	o := &Owner{
		params:        params,
		fam:           fam,
		mech:          mech,
		keepDocTables: true,
		docTables:     make(map[int]*sketch.Table),
		meta:          make(map[int]docMeta),
		rtk:           rtk,
	}
	for _, opt := range opts {
		opt(o)
	}
	return o, nil
}

// Params returns the shared protocol parameters.
func (o *Owner) Params() Params { return o.params }

// Family returns the shared hash family.
func (o *Owner) Family() *hashutil.Family { return o.fam }

// RTK exposes the owner's RTK-Sketch (e.g. for space accounting).
func (o *Owner) RTK() *RTKSketch { return o.rtk }

// Generation returns the owner's ingest generation: a counter bumped by
// every corpus mutation (AddDocument, one bump per AddDocuments batch,
// RemoveDocument). Query answers cached under one generation are
// invalid for any later one — the federated answer cache folds this
// value into its keys so ingestion naturally invalidates stale entries.
func (o *Owner) Generation() uint64 { return o.generation.Load() }

// AddDocument ingests a document given its term counts (Step 1 of the
// protocol: sketch construction). unique and the total length are
// derived from counts.
func (o *Owner) AddDocument(docID int, counts map[uint64]int64) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, dup := o.meta[docID]; dup {
		return fmt.Errorf("core: duplicate document id %d", docID)
	}
	table, err := sketch.New(o.params.SketchKind, o.fam)
	if err != nil {
		return err
	}
	length := 0
	for _, c := range counts {
		length += int(c)
	}
	table.AddCounts(counts)
	if err := o.rtk.Update(docID, table); err != nil {
		return err
	}
	if o.keepDocTables {
		o.docTables[docID] = table
	}
	o.meta[docID] = docMeta{length: length, unique: len(counts)}
	o.ids = append(o.ids, docID)
	o.idsSorted = false
	o.generation.Add(1)
	return nil
}

// DocCounts pairs a document id with its term counts — one unit of a
// bulk-ingestion batch.
type DocCounts struct {
	DocID  int
	Counts map[uint64]int64
}

// AddDocuments bulk-loads a batch of documents on a bounded worker pool
// (workers <= 0 resolves to Params.Workers, i.e. GOMAXPROCS by default).
// The final owner state is identical to calling AddDocument for each
// element in slice order: per-document sketch tables are built in
// parallel (the hashing-heavy stage), then folded into the RTK-Sketch
// with the rows partitioned across workers — each worker owns a disjoint
// row band and replays the documents in slice order, so every heap sees
// the same push sequence the sequential path would issue.
//
// On error (duplicate id, geometry mismatch) the owner is left unchanged;
// unlike a sequential AddDocument loop there is no partially-applied
// prefix.
func (o *Owner) AddDocuments(docs []DocCounts, workers int) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(docs) == 0 {
		return nil
	}
	inBatch := make(map[int]struct{}, len(docs))
	for _, d := range docs {
		if _, dup := o.meta[d.DocID]; dup {
			return fmt.Errorf("core: duplicate document id %d", d.DocID)
		}
		if _, dup := inBatch[d.DocID]; dup {
			return fmt.Errorf("core: duplicate document id %d", d.DocID)
		}
		inBatch[d.DocID] = struct{}{}
	}
	if workers <= 0 {
		workers = o.params.Workers(len(docs))
	}
	if workers > len(docs) {
		workers = len(docs)
	}

	// Stage 1: build one sketch table per document, documents striped
	// across the pool. Nothing is mutated on the owner yet, so a failure
	// here aborts cleanly.
	tables := make([]*sketch.Table, len(docs))
	errs := make([]error, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(docs) {
					return
				}
				t, err := sketch.New(o.params.SketchKind, o.fam)
				if err != nil {
					errs[w] = err
					return
				}
				t.AddCounts(docs[i].Counts)
				tables[i] = t
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Stage 2: fold every table into the RTK-Sketch, rows sharded across
	// the pool; each band replays the batch in slice order (see
	// updateRows for why this reproduces the sequential state).
	z := o.params.Z
	bands := workers
	if bands > z {
		bands = z
	}
	wg = sync.WaitGroup{}
	for b := 0; b < bands; b++ {
		lo := b * z / bands
		hi := (b + 1) * z / bands
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i, d := range docs {
				o.rtk.updateRows(d.DocID, tables[i], lo, hi)
			}
		}(lo, hi)
	}
	wg.Wait()
	o.rtk.addDocs(len(docs))

	// Stage 3: metadata, in slice order.
	for i, d := range docs {
		length := 0
		for _, c := range d.Counts {
			length += int(c)
		}
		if o.keepDocTables {
			o.docTables[d.DocID] = tables[i]
		}
		o.meta[d.DocID] = docMeta{length: length, unique: len(d.Counts)}
		o.ids = append(o.ids, d.DocID)
	}
	o.idsSorted = false
	o.generation.Add(1)
	return nil
}

// RemoveDocument deletes a document from the RTK-Sketch and drops its
// sketch and metadata.
func (o *Owner) RemoveDocument(docID int) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.meta[docID]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownDoc, docID)
	}
	o.rtk.Delete(docID)
	delete(o.docTables, docID)
	delete(o.meta, docID)
	for i, id := range o.ids {
		if id == docID {
			o.ids = append(o.ids[:i], o.ids[i+1:]...)
			break
		}
	}
	o.generation.Add(1)
	return nil
}

// DocIDs returns the owner's document ids in ascending order.
func (o *Owner) DocIDs() []int {
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.idsSorted {
		sort.Ints(o.ids)
		o.idsSorted = true
	}
	return append([]int(nil), o.ids...)
}

// DocMeta returns the non-private length metadata of a document.
func (o *Owner) DocMeta(docID int) (length, unique int, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	m, ok := o.meta[docID]
	if !ok {
		return 0, 0, fmt.Errorf("%w: %d", ErrUnknownDoc, docID)
	}
	return m.length, m.unique, nil
}

// AnswerTF implements Algorithm 2: look up the queried column in every
// row of the document's sketch and perturb all z results with a single
// noise draw before responding.
func (o *Owner) AnswerTF(docID int, q *TFQuery) (*TFResponse, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.keepDocTables {
		return nil, ErrNoSketches
	}
	table, ok := o.docTables[docID]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownDoc, docID)
	}
	if q == nil || len(q.Cols) != o.params.Z {
		return nil, fmt.Errorf("%w: query has %d columns, want %d", ErrBadQuery, qLen(q), o.params.Z)
	}
	raw, err := table.LookupColumns(q.Cols)
	if err != nil {
		return nil, err
	}
	noise := o.mech.Sample() // one draw for all z values, as in Algorithm 2
	vals := make([]float64, len(raw))
	for i, v := range raw {
		vals[i] = float64(v) + noise
	}
	return &TFResponse{Values: vals}, nil
}

// AnswerRTK implements the owner side of Algorithm 5: return the heap
// content of the addressed cell in every row, counts perturbed with a
// single noise draw.
func (o *Owner) AnswerRTK(q *TFQuery) (*RTKResponse, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if q == nil || len(q.Cols) != o.params.Z {
		return nil, fmt.Errorf("%w: query has %d columns, want %d", ErrBadQuery, qLen(q), o.params.Z)
	}
	noise := o.mech.Sample()
	cells := make([]RTKCell, o.params.Z)
	for a := 0; a < o.params.Z; a++ {
		if q.Cols[a] >= uint32(o.params.W) {
			return nil, fmt.Errorf("%w: column %d out of range", ErrBadQuery, q.Cols[a])
		}
		entries := o.rtk.Cell(a, q.Cols[a])
		cell := RTKCell{
			IDs:    make([]int32, len(entries)),
			Values: make([]float64, len(entries)),
		}
		for i, e := range entries {
			cell.IDs[i] = e.DocID
			cell.Values[i] = float64(e.Value) + noise
		}
		cells[a] = cell
	}
	return &RTKResponse{Cells: cells}, nil
}

// NaiveSizeBytes returns the owner-side memory of the per-document
// sketches (the NAIVE baseline's space cost).
func (o *Owner) NaiveSizeBytes() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	var n int64
	for _, t := range o.docTables {
		n += int64(t.SizeBytes())
	}
	return n
}

// RTKSizeBytes returns the RTK-Sketch memory footprint.
func (o *Owner) RTKSizeBytes() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.rtk.SizeBytes()
}

func qLen(q *TFQuery) int {
	if q == nil {
		return 0
	}
	return len(q.Cols)
}
