package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"csfltr/internal/dp"
)

// TestRTKResultsAreIngestedDocs (property): reverse top-K may only ever
// return documents the owner actually ingested, for arbitrary corpora
// and probe terms.
func TestRTKResultsAreIngestedDocs(t *testing.T) {
	p := testParams()
	p.K = 5
	check := func(raw []uint8, probe uint8) bool {
		o, err := NewOwner(p, 42, dp.Disabled())
		if err != nil {
			return false
		}
		ingested := map[int]struct{}{}
		nDocs := 1 + len(raw)%8
		for id := 0; id < nDocs; id++ {
			counts := map[uint64]int64{}
			for j, b := range raw {
				if j%nDocs == id {
					counts[uint64(b%32)]++
				}
			}
			if len(counts) == 0 {
				counts[uint64(id)] = 1
			}
			if err := o.AddDocument(id, counts); err != nil {
				return false
			}
			ingested[id] = struct{}{}
		}
		q, err := NewQuerier(p, 42, rand.New(rand.NewSource(int64(probe))))
		if err != nil {
			return false
		}
		got, _, err := RTKReverseTopK(q, o, uint64(probe%32), p.K)
		if err != nil {
			return false
		}
		if len(got) > p.K {
			return false
		}
		seen := map[int]struct{}{}
		for _, dc := range got {
			if _, ok := ingested[dc.DocID]; !ok {
				return false // phantom document
			}
			if _, dup := seen[dc.DocID]; dup {
				return false // duplicate result
			}
			seen[dc.DocID] = struct{}{}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestCoverRateBounds (property): cover rate is always in [0, 1] and
// equals 1 when got is a superset of truth.
func TestCoverRateBounds(t *testing.T) {
	check := func(gotIDs, truthIDs []uint8) bool {
		got := make([]DocCount, len(gotIDs))
		for i, id := range gotIDs {
			got[i] = DocCount{DocID: int(id)}
		}
		truth := make([]DocCount, len(truthIDs))
		for i, id := range truthIDs {
			truth[i] = DocCount{DocID: int(id)}
		}
		cr := CoverRate(got, truth)
		if cr < 0 || cr > 1 {
			return false
		}
		// Superset property: got ∪ truth covers truth fully.
		union := append(append([]DocCount(nil), got...), truth...)
		return CoverRate(union, truth) == 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestTFQueryDecoysInRange (property): every transmitted column index is
// within the sketch width, real or decoy, for arbitrary terms.
func TestTFQueryDecoysInRange(t *testing.T) {
	p := testParams()
	q, err := NewQuerier(p, 42, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	check := func(term uint64) bool {
		query, priv := q.BuildQuery(term)
		if len(priv.PV) != p.Z1 {
			return false
		}
		for _, col := range query.Cols {
			if col >= uint32(p.W) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestAddRemoveRestoresEmptyAnswers (property): ingesting documents and
// removing them all returns the owner to answering empty results.
func TestAddRemoveRestoresEmptyAnswers(t *testing.T) {
	p := testParams()
	check := func(raw []uint8) bool {
		o, err := NewOwner(p, 42, dp.Disabled())
		if err != nil {
			return false
		}
		n := 1 + len(raw)%5
		for id := 0; id < n; id++ {
			counts := map[uint64]int64{uint64(id + 1): int64(id + 2)}
			if err := o.AddDocument(id, counts); err != nil {
				return false
			}
		}
		for id := 0; id < n; id++ {
			if err := o.RemoveDocument(id); err != nil {
				return false
			}
		}
		if len(o.DocIDs()) != 0 {
			return false
		}
		q, err := NewQuerier(p, 42, rand.New(rand.NewSource(3)))
		if err != nil {
			return false
		}
		got, _, err := RTKReverseTopK(q, o, 1, 3)
		return err == nil && len(got) == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
