package core

import (
	"fmt"
	"math"
	"sort"

	"csfltr/internal/sketch"
)

// NaiveReverseTopK implements Algorithm 3: query the term's frequency in
// every document of the owner via the privacy-preserving TF protocol and
// keep the k largest estimates. The obfuscated hash vector is built once
// per term (Algorithm 1) and reused for all documents; the owner answers
// one perturbed lookup per document, so computation is O(z*n) and the
// response traffic grows linearly in n.
func NaiveReverseTopK(q *Querier, owner OwnerAPI, term uint64, k int) ([]DocCount, Cost, error) {
	if k <= 0 {
		return nil, Cost{}, fmt.Errorf("%w: k=%d", ErrBadParams, k)
	}
	query, priv := q.BuildQuery(term)
	var cost Cost
	cost.BytesSent += query.WireSize()
	ids := owner.DocIDs()
	results := make([]DocCount, 0, len(ids))
	for _, id := range ids {
		resp, err := owner.AnswerTF(id, query)
		if err != nil {
			return nil, cost, fmt.Errorf("core: naive TF query for doc %d: %w", id, err)
		}
		cost.Messages++
		cost.BytesReceived += resp.WireSize()
		cost.SketchLookups += q.params.Z
		count, err := q.Recover(priv, resp)
		if err != nil {
			return nil, cost, err
		}
		results = append(results, DocCount{DocID: id, Count: count})
	}
	return topK(results, k), cost, nil
}

// RTKReverseTopK implements Algorithm 5: fetch the RTK-Sketch cells the
// term hashes to, soft-intersect them (a document must appear in at least
// beta*z1 of the private rows), estimate each candidate's count with the
// standard sketch estimator over the rows it appeared in, and return the
// top k. One round trip; traffic is O(z*alpha*K) independent of n.
func RTKReverseTopK(q *Querier, owner OwnerAPI, term uint64, k int) ([]DocCount, Cost, error) {
	if k <= 0 {
		return nil, Cost{}, fmt.Errorf("%w: k=%d", ErrBadParams, k)
	}
	query, priv := q.BuildQuery(term)
	var cost Cost
	cost.BytesSent += query.WireSize()
	resp, err := owner.AnswerRTK(query)
	if err != nil {
		return nil, cost, err
	}
	cost.Messages = 1
	cost.BytesReceived += resp.WireSize()
	cost.SketchLookups = q.params.Z
	if len(resp.Cells) != q.params.Z {
		return nil, cost, fmt.Errorf("%w: response has %d cells, want %d",
			ErrBadQuery, len(resp.Cells), q.params.Z)
	}

	// Gather per-document (row, value) observations from the private rows
	// only; decoy rows address unrelated cells and would pollute the
	// intersection.
	type obs struct {
		rows []int
		vals []float64
	}
	byDoc := make(map[int32]*obs)
	for _, a := range priv.PV {
		cell := resp.Cells[a]
		for i, id := range cell.IDs {
			o := byDoc[id]
			if o == nil {
				o = &obs{}
				byDoc[id] = o
			}
			o.rows = append(o.rows, a)
			o.vals = append(o.vals, cell.Values[i])
		}
	}

	// Soft intersection: keep documents present in >= beta*z1 private rows
	// (the paper filters on beta*z with unobfuscated queries).
	threshold := int(math.Ceil(q.params.Beta * float64(q.params.Z1)))
	if threshold < 1 {
		threshold = 1
	}
	candidates := make([]DocCount, 0, len(byDoc))
	for id, o := range byDoc {
		if len(o.rows) < threshold {
			continue
		}
		rows, vals := o.rows, o.vals
		if q.params.Estimator == EstimatorZeroFill {
			// Estimate over ALL private rows, treating rows where the
			// document was evicted from the heap as zeros. An absent
			// entry means the document's cell value fell below the heap
			// floor; scoring only the rows where it survived would bias
			// borderline documents upward (they survive exactly where
			// collision noise inflated them) and let weak candidates
			// outrank true top-K members.
			rows = priv.PV
			vals = make([]float64, len(rows))
			for i, a := range rows {
				for j, oa := range o.rows {
					if oa == a {
						vals[i] = o.vals[j]
						break
					}
				}
			}
		}
		est := sketch.EstimateFromRows(q.params.SketchKind, q.fam, priv.Term, rows, vals)
		candidates = append(candidates, DocCount{DocID: int(id), Count: est})
	}
	return topK(candidates, k), cost, nil
}

// topK sorts results by descending count (ties by ascending id for
// determinism) and truncates to k.
func topK(results []DocCount, k int) []DocCount {
	sort.Slice(results, func(i, j int) bool {
		if results[i].Count != results[j].Count {
			return results[i].Count > results[j].Count
		}
		return results[i].DocID < results[j].DocID
	})
	if len(results) > k {
		results = results[:k]
	}
	return results
}

// ExactReverseTopK computes the ground-truth reverse top-K over raw term
// counts (no sketching, no privacy): the reference answer for cover-rate
// evaluation. counts maps docID -> term -> count.
func ExactReverseTopK(counts map[int]map[uint64]int64, term uint64, k int) []DocCount {
	results := make([]DocCount, 0, len(counts))
	for id, tc := range counts {
		if c := tc[term]; c > 0 {
			results = append(results, DocCount{DocID: id, Count: float64(c)})
		}
	}
	return topK(results, k)
}

// CoverRate returns |got ∩ truth| / |truth|, the paper's cover-rate metric
// for reverse top-K accuracy (Theorem 4, Fig. 4). An empty truth set
// yields 1 by convention.
func CoverRate(got []DocCount, truth []DocCount) float64 {
	if len(truth) == 0 {
		return 1
	}
	set := make(map[int]struct{}, len(got))
	for _, dc := range got {
		set[dc.DocID] = struct{}{}
	}
	hit := 0
	for _, dc := range truth {
		if _, ok := set[dc.DocID]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}
