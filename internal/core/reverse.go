package core

import (
	"fmt"
	"math"
	"sort"

	"csfltr/internal/sketch"
)

// NaiveReverseTopK implements Algorithm 3: query the term's frequency in
// every document of the owner via the privacy-preserving TF protocol and
// keep the k largest estimates. The obfuscated hash vector is built once
// per term (Algorithm 1) and reused for all documents; the owner answers
// one perturbed lookup per document, so computation is O(z*n) and the
// response traffic grows linearly in n.
func NaiveReverseTopK(q *Querier, owner OwnerAPI, term uint64, k int) ([]DocCount, Cost, error) {
	return NaiveWithPlan(q.Plan(term), owner, k)
}

// NaiveWithPlan is NaiveReverseTopK over a prebuilt query plan (see
// Querier.Plan): the obfuscated hash vector is reused rather than
// rebuilt, so the same plan can serve several owners. Cost accounting is
// identical to the build-per-call path — the query is still sent (and its
// bytes counted) once per owner.
//
//csfltr:deterministic
func NaiveWithPlan(plan *Plan, owner OwnerAPI, k int) ([]DocCount, Cost, error) {
	if k <= 0 {
		return nil, Cost{}, fmt.Errorf("%w: k=%d", ErrBadParams, k)
	}
	query, priv := plan.query, plan.priv
	var cost Cost
	cost.BytesSent += query.WireSize()
	ids := owner.DocIDs()
	results := make([]DocCount, 0, len(ids))
	for _, id := range ids {
		resp, err := owner.AnswerTF(id, query)
		if err != nil {
			return nil, cost, fmt.Errorf("core: naive TF query for doc %d: %w", id, err)
		}
		cost.Messages++
		cost.BytesReceived += resp.WireSize()
		cost.SketchLookups += plan.params.Z
		if len(resp.Values) != plan.params.Z {
			return nil, cost, fmt.Errorf("%w: response has %d values, want %d",
				ErrBadQuery, len(resp.Values), plan.params.Z)
		}
		vals := make([]float64, len(priv.PV))
		for i, a := range priv.PV {
			vals[i] = resp.Values[a]
		}
		count := sketch.EstimateFromRows(plan.params.SketchKind, plan.fam, priv.Term, priv.PV, vals)
		results = append(results, DocCount{DocID: id, Count: count})
	}
	return topK(results, k), cost, nil
}

// RTKReverseTopK implements Algorithm 5: fetch the RTK-Sketch cells the
// term hashes to, soft-intersect them (a document must appear in at least
// beta*z1 of the private rows), estimate each candidate's count with the
// standard sketch estimator over the rows it appeared in, and return the
// top k. One round trip; traffic is O(z*alpha*K) independent of n.
func RTKReverseTopK(q *Querier, owner OwnerAPI, term uint64, k int) ([]DocCount, Cost, error) {
	return RTKWithPlan(q.Plan(term), owner, k)
}

// RTKWithPlan is RTKReverseTopK over a prebuilt query plan (see
// Querier.Plan). A federated search builds one plan per query term and
// fans it out to every party concurrently; the plan is read-only here, so
// concurrent calls sharing a plan are safe. Cost accounting is identical
// to the build-per-call path — the query is still sent (and its bytes
// counted) once per owner.
//
//csfltr:deterministic
func RTKWithPlan(plan *Plan, owner OwnerAPI, k int) ([]DocCount, Cost, error) {
	if k <= 0 {
		return nil, Cost{}, fmt.Errorf("%w: k=%d", ErrBadParams, k)
	}
	query, priv := plan.query, plan.priv
	var cost Cost
	cost.BytesSent += query.WireSize()
	resp, err := owner.AnswerRTK(query)
	if err != nil {
		return nil, cost, err
	}
	cost.Messages = 1
	cost.BytesReceived += resp.WireSize()
	cost.SketchLookups = plan.params.Z
	if len(resp.Cells) != plan.params.Z {
		return nil, cost, fmt.Errorf("%w: response has %d cells, want %d",
			ErrBadQuery, len(resp.Cells), plan.params.Z)
	}

	// Gather per-document (row, value) observations from the private rows
	// only; decoy rows address unrelated cells and would pollute the
	// intersection. PV is sorted ascending, so each document's observed
	// rows come out sorted ascending too — the zero-fill branch below
	// relies on that.
	type obs struct {
		rows []int
		vals []float64
	}
	byDoc := make(map[int32]*obs)
	for _, a := range priv.PV {
		cell := resp.Cells[a]
		for i, id := range cell.IDs {
			o := byDoc[id]
			if o == nil {
				o = &obs{}
				byDoc[id] = o
			}
			o.rows = append(o.rows, a)
			o.vals = append(o.vals, cell.Values[i])
		}
	}

	// Soft intersection: keep documents present in >= beta*z1 private rows
	// (the paper filters on beta*z with unobfuscated queries).
	threshold := int(math.Ceil(plan.params.Beta * float64(plan.params.Z1)))
	if threshold < 1 {
		threshold = 1
	}
	var zeroFill []float64 // scratch reused across candidates
	candidates := make([]DocCount, 0, len(byDoc))
	for id, o := range byDoc {
		if len(o.rows) < threshold {
			continue
		}
		rows, vals := o.rows, o.vals
		if plan.params.Estimator == EstimatorZeroFill {
			// Estimate over ALL private rows, treating rows where the
			// document was evicted from the heap as zeros. An absent
			// entry means the document's cell value fell below the heap
			// floor; scoring only the rows where it survived would bias
			// borderline documents upward (they survive exactly where
			// collision noise inflated them) and let weak candidates
			// outrank true top-K members. o.rows is a sorted subsequence
			// of PV, so a single linear merge places each observation.
			rows = priv.PV
			if zeroFill == nil {
				zeroFill = make([]float64, len(rows))
			}
			vals = zeroFill
			mergeZeroFill(priv.PV, o.rows, o.vals, vals)
		}
		est := sketch.EstimateFromRows(plan.params.SketchKind, plan.fam, priv.Term, rows, vals)
		//csfltr:allow determinism -- candidates are fully re-ordered by topK's (count, id) sort before any order-dependent use
		candidates = append(candidates, DocCount{DocID: int(id), Count: est})
	}
	return topK(candidates, k), cost, nil
}

// mergeZeroFill scatters a document's observed per-row values into dst —
// one slot per private row, zero where the document was evicted from the
// cell heap. rows must be a sorted subsequence of pv and dst must have
// len(pv); a single linear merge replaces the per-row lookup that made
// the zero-fill estimator O(z^2) per candidate.
func mergeZeroFill(pv, rows []int, vals, dst []float64) {
	j := 0
	for i, a := range pv {
		if j < len(rows) && rows[j] == a {
			dst[i] = vals[j]
			j++
		} else {
			dst[i] = 0
		}
	}
}

// topK sorts results by descending count (ties by ascending id for
// determinism) and truncates to k.
//
//csfltr:deterministic
func topK(results []DocCount, k int) []DocCount {
	sort.Slice(results, func(i, j int) bool {
		if results[i].Count != results[j].Count {
			return results[i].Count > results[j].Count
		}
		return results[i].DocID < results[j].DocID
	})
	if len(results) > k {
		results = results[:k]
	}
	return results
}

// ExactReverseTopK computes the ground-truth reverse top-K over raw term
// counts (no sketching, no privacy): the reference answer for cover-rate
// evaluation. counts maps docID -> term -> count.
//
//csfltr:deterministic
func ExactReverseTopK(counts map[int]map[uint64]int64, term uint64, k int) []DocCount {
	results := make([]DocCount, 0, len(counts))
	for id, tc := range counts {
		if c := tc[term]; c > 0 {
			//csfltr:allow determinism -- results are fully re-ordered by topK's (count, id) sort before any order-dependent use
			results = append(results, DocCount{DocID: id, Count: float64(c)})
		}
	}
	return topK(results, k)
}

// CoverRate returns |got ∩ truth| / |truth|, the paper's cover-rate metric
// for reverse top-K accuracy (Theorem 4, Fig. 4). An empty truth set
// yields 1 by convention.
func CoverRate(got []DocCount, truth []DocCount) float64 {
	if len(truth) == 0 {
		return 1
	}
	set := make(map[int]struct{}, len(got))
	for _, dc := range got {
		set[dc.DocID] = struct{}{}
	}
	hit := 0
	for _, dc := range truth {
		if _, ok := set[dc.DocID]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}
