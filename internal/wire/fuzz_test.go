package wire

import (
	"testing"

	"csfltr/internal/core"
)

// FuzzWireDecode drives every decoder with arbitrary bytes: malformed
// input must return an error — never panic, and never allocate beyond
// what the input length itself justifies (the checkCount discipline).
// Valid inputs that decode must re-encode to a frame that decodes to
// the same value.
func FuzzWireDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{Version, 0, 0})
	f.Add(Pack(nil, AppendUvarint(nil, 0)))
	f.Add(AppendTFQuery(nil, &core.TFQuery{Cols: []uint32{1, 5, 199}}))
	f.Add(AppendTFResponse(nil, &core.TFResponse{Values: []float64{1, 2.5, -7}}))
	f.Add(AppendRTKResponse(nil, &core.RTKResponse{Cells: []core.RTKCell{
		{IDs: []int32{3, 9, 11}, Values: []float64{4, 1, 2}},
		{IDs: []int32{}, Values: []float64{}},
	}}))
	f.Add(AppendEntries(nil, []core.Entry{{DocID: 4, Value: -2}, {DocID: 90, Value: 7}}))
	f.Add(AppendRowMatrix(nil, [][]int64{{1, -2, 3}, {0, 0, 9}}))

	f.Fuzz(func(t *testing.T, data []byte) {
		if r, err := DecodeRTKResponse(data); err == nil {
			again, err := DecodeRTKResponse(AppendRTKResponse(nil, r))
			if err != nil || !respEqual(again, r) {
				t.Fatalf("RTK re-encode diverged: %v", err)
			}
		}
		if q, err := DecodeTFQuery(data); err == nil {
			if _, err := DecodeTFQuery(AppendTFQuery(nil, q)); err != nil {
				t.Fatalf("TFQuery re-encode failed: %v", err)
			}
		}
		if r, err := DecodeTFResponse(data); err == nil {
			if _, err := DecodeTFResponse(AppendTFResponse(nil, r)); err != nil {
				t.Fatalf("TFResponse re-encode failed: %v", err)
			}
		}
		if es, err := DecodeEntries(data); err == nil {
			if _, err := DecodeEntries(AppendEntries(nil, es)); err != nil {
				t.Fatalf("Entries re-encode failed: %v", err)
			}
		}
		if rows, err := DecodeRowMatrix(data); err == nil {
			if _, err := DecodeRowMatrix(AppendRowMatrix(nil, rows)); err != nil {
				t.Fatalf("RowMatrix re-encode failed: %v", err)
			}
		}
		_, _ = Unpack(data)
	})
}
