// Package wire is the compact binary codec shared by every federation
// transport. The protocol's dominant payloads — RTK-Sketch cell replies,
// TF value vectors, obfuscated column queries — are small integers with
// strong local structure (canonically sorted document ids, quantized
// counts), which fixed-width encodings (JSON, gob's reflected structs,
// the 12-bytes-per-entry accounting model) waste heavily. This package
// encodes them as varint deltas and zig-zag varints inside a small
// versioned frame, optionally flate-compressed above a size threshold.
//
// Layering: wire depends only on the standard library and internal/core;
// internal/federation builds its transport codecs (gob hooks, HTTP
// bodies, SearchResult) on the exported primitives, so byte accounting
// and format versioning stay in one place.
package wire

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is the first byte of every frame. Decoders reject frames with
// a version they do not know; adding fields or changing payload layout
// requires a bump.
const Version = 1

// Frame flag bits (second byte of every frame).
const (
	flagCompressed = 1 << 0 // payload is flate-compressed
)

// CompressThreshold is the payload size (bytes) above which Pack
// attempts flate compression. Below it the frame overhead and the flate
// dictionary warm-up cost more than they save.
const CompressThreshold = 512

// maxPayload caps the decoded payload size (and therefore every decoder
// allocation) so a malformed or hostile frame cannot demand absurd
// memory before its content is even parsed. RTK replies at default
// geometry are well under a megabyte.
const maxPayload = 1 << 26

// ErrMalformed marks any decode failure: truncation, bad version,
// implausible lengths, trailing garbage.
var ErrMalformed = errors.New("wire: malformed payload")

// Pack wraps an encoded payload in the versioned frame, appending to
// dst: [version][flags][uvarint raw length][payload]. Payloads of
// CompressThreshold bytes or more are flate-compressed when that
// actually shrinks them.
func Pack(dst, payload []byte) []byte {
	flags := byte(0)
	body := payload
	if len(payload) >= CompressThreshold {
		var buf bytes.Buffer
		zw, err := flate.NewWriter(&buf, flate.BestSpeed)
		if err == nil {
			if _, err = zw.Write(payload); err == nil && zw.Close() == nil && buf.Len() < len(payload) {
				flags |= flagCompressed
				body = buf.Bytes()
			}
		}
	}
	dst = append(dst, Version, flags)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, body...)
}

// PackedSize returns the frame size Pack would produce without
// compression — the deterministic, allocation-free upper bound used for
// byte accounting (compression savings on top are workload-dependent).
func PackedSize(payloadLen int) int64 {
	return int64(2 + uvarintLen(uint64(payloadLen)) + payloadLen)
}

// Unpack validates the frame and returns the raw payload. The input
// must contain exactly one frame; trailing bytes are an error.
func Unpack(data []byte) ([]byte, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("%w: truncated frame", ErrMalformed)
	}
	if data[0] != Version {
		return nil, fmt.Errorf("%w: unknown version %d", ErrMalformed, data[0])
	}
	flags := data[1]
	if flags&^byte(flagCompressed) != 0 {
		return nil, fmt.Errorf("%w: unknown flags %#x", ErrMalformed, flags)
	}
	rawLen, n := binary.Uvarint(data[2:])
	if n <= 0 || rawLen > maxPayload {
		return nil, fmt.Errorf("%w: bad payload length", ErrMalformed)
	}
	body := data[2+n:]
	if flags&flagCompressed == 0 {
		if uint64(len(body)) != rawLen {
			return nil, fmt.Errorf("%w: payload length mismatch", ErrMalformed)
		}
		return body, nil
	}
	// Compression only ever shrinks the body (Pack keeps the raw payload
	// otherwise), so a compressed body at least as large as its claimed
	// raw length is malformed — and this bound also keeps the inflate
	// below from being fed unbounded garbage.
	if uint64(len(body)) >= rawLen {
		return nil, fmt.Errorf("%w: compressed payload not smaller than raw", ErrMalformed)
	}
	zr := flate.NewReader(bytes.NewReader(body))
	out := make([]byte, rawLen)
	if _, err := io.ReadFull(zr, out); err != nil {
		return nil, fmt.Errorf("%w: inflate: %v", ErrMalformed, err)
	}
	// The stream must end exactly at the claimed length.
	var one [1]byte
	if n, _ := zr.Read(one[:]); n != 0 {
		return nil, fmt.Errorf("%w: inflated payload longer than declared", ErrMalformed)
	}
	return out, nil
}

// AppendUvarint appends v as an unsigned varint.
func AppendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

// AppendVarint appends v as a zig-zag varint.
func AppendVarint(dst []byte, v int64) []byte { return binary.AppendVarint(dst, v) }

// Uvarint consumes one unsigned varint from data.
func Uvarint(data []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad uvarint", ErrMalformed)
	}
	return v, data[n:], nil
}

// Varint consumes one zig-zag varint from data.
func Varint(data []byte) (int64, []byte, error) {
	v, n := binary.Varint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad varint", ErrMalformed)
	}
	return v, data[n:], nil
}

// uvarintLen returns the encoded length of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// varintLen returns the encoded length of v as a zig-zag varint.
func varintLen(v int64) int {
	return uvarintLen(uint64(v)<<1 ^ uint64(v>>63))
}

// checkCount validates an element count claimed by a varint against the
// bytes actually remaining: every element of any wire array costs at
// least one byte, so a count exceeding the remainder is malformed and
// must be rejected before anything is allocated for it.
func checkCount(n uint64, rest []byte) error {
	if n > uint64(len(rest)) {
		return fmt.Errorf("%w: count %d exceeds remaining input", ErrMalformed, n)
	}
	return nil
}
