package wire

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"csfltr/internal/core"
	"csfltr/internal/dp"
	"csfltr/internal/hashutil"
	"csfltr/internal/sketch"
)

func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, size := range []int{0, 1, 100, CompressThreshold - 1, CompressThreshold, 4096, 1 << 16} {
		random := make([]byte, size)
		rng.Read(random)
		repetitive := bytes.Repeat([]byte("abcdef"), size/6+1)[:size]
		for name, payload := range map[string][]byte{"random": random, "repetitive": repetitive} {
			framed := Pack(nil, payload)
			got, err := Unpack(framed)
			if err != nil {
				t.Fatalf("size=%d %s: %v", size, name, err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("size=%d %s: payload corrupted", size, name)
			}
			if size >= CompressThreshold && name == "repetitive" && len(framed) >= size {
				t.Fatalf("size=%d: repetitive payload did not compress (frame %d)", size, len(framed))
			}
		}
	}
}

func TestFrameRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":          nil,
		"short":          {Version},
		"bad version":    {99, 0, 0},
		"bad flags":      {Version, 0x80, 0},
		"length lies":    {Version, 0, 10, 'x'},
		"huge length":    append([]byte{Version, 0}, AppendUvarint(nil, 1<<40)...),
		"compressed big": append(append([]byte{Version, flagCompressed}, AppendUvarint(nil, 4)...), 1, 2, 3, 4, 5),
	}
	for name, data := range cases {
		if _, err := Unpack(data); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// randomValues draws a value vector in one of the regimes the protocol
// produces: exact counts (Epsilon=0), noisy floats, and adversarial
// specials.
func randomValues(rng *rand.Rand, n int) []float64 {
	vals := make([]float64, n)
	switch rng.Intn(3) {
	case 0: // integral counts
		for i := range vals {
			vals[i] = float64(rng.Intn(2000) - 500)
		}
	case 1: // noisy
		for i := range vals {
			vals[i] = float64(rng.Intn(100)) + rng.NormFloat64()
		}
	default: // specials mixed in
		for i := range vals {
			switch rng.Intn(5) {
			case 0:
				vals[i] = math.Inf(1 - 2*rng.Intn(2))
			case 1:
				vals[i] = math.Copysign(0, -1)
			default:
				vals[i] = rng.NormFloat64() * 1e9
			}
		}
	}
	return vals
}

func TestRTKResponseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		ncells := rng.Intn(8)
		resp := &core.RTKResponse{Cells: make([]core.RTKCell, ncells)}
		for c := range resp.Cells {
			n := rng.Intn(40)
			ids := make([]int32, n)
			for i := range ids {
				ids[i] = int32(rng.Intn(1 << 20))
			}
			if rng.Intn(2) == 0 { // canonical ascending, the common case
				sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			}
			resp.Cells[c] = core.RTKCell{IDs: ids, Values: randomValues(rng, n)}
		}
		data := AppendRTKResponse(nil, resp)
		got, err := DecodeRTKResponse(data)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !respEqual(got, resp) {
			t.Fatalf("trial %d: round trip diverged\n got %+v\nwant %+v", trial, got, resp)
		}
	}
}

// respEqual compares RTK responses treating NaN as equal to itself
// (bit-level round trip) and nil/empty slices as equal.
func respEqual(a, b *core.RTKResponse) bool {
	if len(a.Cells) != len(b.Cells) {
		return false
	}
	for i := range a.Cells {
		ca, cb := a.Cells[i], b.Cells[i]
		if len(ca.IDs) != len(cb.IDs) || len(ca.Values) != len(cb.Values) {
			return false
		}
		for j := range ca.IDs {
			if ca.IDs[j] != cb.IDs[j] {
				return false
			}
		}
		for j := range ca.Values {
			if math.Float64bits(ca.Values[j]) != math.Float64bits(cb.Values[j]) {
				return false
			}
		}
	}
	return true
}

func TestTFRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		q := &core.TFQuery{Cols: make([]uint32, rng.Intn(40))}
		for i := range q.Cols {
			q.Cols[i] = uint32(rng.Intn(1 << 16))
		}
		gotQ, err := DecodeTFQuery(AppendTFQuery(nil, q))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(gotQ.Cols) != len(q.Cols) {
			t.Fatalf("trial %d: col count diverged", trial)
		}
		for i := range q.Cols {
			if gotQ.Cols[i] != q.Cols[i] {
				t.Fatalf("trial %d: col %d diverged", trial, i)
			}
		}
		r := &core.TFResponse{Values: randomValues(rng, rng.Intn(40))}
		gotR, err := DecodeTFResponse(AppendTFResponse(nil, r))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(gotR.Values) != len(r.Values) {
			t.Fatalf("trial %d: value count diverged", trial)
		}
		for i := range r.Values {
			if math.Float64bits(gotR.Values[i]) != math.Float64bits(r.Values[i]) {
				t.Fatalf("trial %d: value %d diverged", trial, i)
			}
		}
	}
}

func TestEntriesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		es := make([]core.Entry, rng.Intn(60))
		for i := range es {
			es[i] = core.Entry{DocID: int32(rng.Intn(1 << 24)), Value: int64(rng.Intn(4000) - 1000)}
		}
		got, err := DecodeEntries(AppendEntries(nil, es))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(es) == 0 {
			if len(got) != 0 {
				t.Fatalf("trial %d: empty run diverged", trial)
			}
			continue
		}
		if !reflect.DeepEqual(got, es) {
			t.Fatalf("trial %d: round trip diverged", trial)
		}
	}
}

// TestSketchRowsRoundTrip: encode -> decode is the identity for real
// sketch tables across every SketchKind and a grid of geometries — the
// codec must be exact for whatever cell values the sketches produce.
func TestSketchRowsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, kind := range []sketch.Kind{sketch.CountMin, sketch.Count} {
		for _, geom := range [][2]int{{1, 2}, {3, 16}, {5, 64}, {8, 256}} {
			z, w := geom[0], geom[1]
			t.Run(fmt.Sprintf("%v_z%d_w%d", kind, z, w), func(t *testing.T) {
				fam, err := hashutil.NewFamily(hashutil.KindPolynomial, z, w, rng.Uint64())
				if err != nil {
					t.Fatal(err)
				}
				tbl, err := sketch.New(kind, fam)
				if err != nil {
					t.Fatal(err)
				}
				for d := 0; d < 50; d++ {
					tbl.Add(uint64(rng.Intn(500)), int64(rng.Intn(9)+1))
				}
				rows := make([][]int64, z)
				for i := range rows {
					rows[i] = make([]int64, w)
					for j := range rows[i] {
						rows[i][j] = tbl.Cell(i, uint32(j))
					}
				}
				got, err := DecodeRowMatrix(AppendRowMatrix(nil, rows))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, rows) {
					t.Fatal("row matrix round trip diverged")
				}
			})
		}
	}
}

// TestRTKCompaction pins the headline property: a realistic RTK reply
// encodes to well under a third of the fixed-width accounting size
// (12 bytes per entry).
func TestRTKCompaction(t *testing.T) {
	p := core.DefaultParams()
	p.Epsilon = 0
	o, err := core.NewOwner(p, 42, dp.Disabled())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for id := 0; id < 400; id++ {
		counts := make(map[uint64]int64)
		for j := 0; j < 40; j++ {
			counts[uint64(rng.Intn(2000))]++
		}
		if err := o.AddDocument(id, counts); err != nil {
			t.Fatal(err)
		}
	}
	q, err := core.NewQuerier(p, 42, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	plan := q.Plan(17)
	resp, err := o.AnswerRTK(plan.Query())
	if err != nil {
		t.Fatal(err)
	}
	raw := resp.WireSize()
	encoded := int64(len(AppendRTKResponse(nil, resp)))
	if raw == 0 {
		t.Fatal("degenerate: empty response")
	}
	if encoded*3 > raw {
		t.Fatalf("encoded %dB vs raw %dB: less than 3x reduction", encoded, raw)
	}
	if got := SizeRTKResponse(resp); got != PackedSize(sizeRTKPayload(resp)) {
		t.Fatalf("SizeRTKResponse inconsistent: %d", got)
	}
	// The size function must match the actual uncompressed encoding.
	unframed := len(AppendRTKResponse(nil, resp)) // may be compressed
	if int64(unframed) > SizeRTKResponse(resp) {
		t.Fatalf("actual frame %dB exceeds declared size %d", unframed, SizeRTKResponse(resp))
	}
}

func TestDecodeRejectsOverclaimedCounts(t *testing.T) {
	// An RTK frame claiming 2^30 cells with a 3-byte body must error
	// before allocating anything of that order.
	payload := AppendUvarint(nil, 1<<30)
	if _, err := DecodeRTKResponse(Pack(nil, payload)); err == nil {
		t.Fatal("expected error for overclaimed cell count")
	}
	// Same for a cell entry count.
	payload = AppendUvarint(nil, 1)
	payload = AppendUvarint(payload, 1<<30)
	if _, err := DecodeRTKResponse(Pack(nil, payload)); err == nil {
		t.Fatal("expected error for overclaimed entry count")
	}
}

func TestModelRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, dim := range []int{0, 1, 8, 300} {
		w := make([]float64, dim)
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		b := rng.NormFloat64()
		frame := AppendModel(nil, w, b)
		if got := SizeModel(w, b); got < int64(len(frame)) {
			t.Fatalf("dim=%d: SizeModel %d < actual frame %d", dim, got, len(frame))
		}
		gw, gb, err := DecodeModel(frame)
		if err != nil {
			t.Fatalf("dim=%d: %v", dim, err)
		}
		if gb != b || len(gw) != dim {
			t.Fatalf("dim=%d: decoded shape mismatch", dim)
		}
		for i := range w {
			if gw[i] != w[i] {
				t.Fatalf("dim=%d: weight %d corrupted", dim, i)
			}
		}
	}
	// Integral weights take the compact varint form: a zero model is tiny.
	zero := AppendModel(nil, make([]float64, 100), 0)
	if len(zero) >= 8*100 {
		t.Fatalf("all-integral model not compact: %d bytes", len(zero))
	}
	// Malformed inputs are rejected.
	good := AppendModel(nil, []float64{1.5, 2.5}, 0.5)
	for i, c := range [][]byte{nil, {99}, good[:len(good)-2], Pack(nil, AppendUvarint(nil, 1<<20))} {
		if _, _, err := DecodeModel(c); err == nil {
			t.Fatalf("case %d: malformed model accepted", i)
		}
	}
}
