package wire

import (
	"fmt"
	"math"

	"csfltr/internal/core"
)

// Payload layouts (inside the Pack frame):
//
//	TFQuery:     uvarint n, then n uvarint column indexes.
//	TFResponse:  uvarint n, then a value vector.
//	RTKResponse: uvarint ncells, then per cell: uvarint n, the document
//	             ids as one zig-zag varint start followed by n-1 zig-zag
//	             varint deltas, then a value vector.
//
// A value vector is one flags byte followed by the values: with the
// integral bit set, n zig-zag varints (the quantized-count form — exact
// whenever every value is a whole number, which is always the case at
// Epsilon = 0); otherwise n raw little-endian float64 bit patterns, so
// noisy values round-trip losslessly too. Document ids arrive in the
// canonical ascending order every owner emits, which makes the deltas
// small positive varints; the delta coding is order-preserving either
// way, so no information is lost on non-canonical input.

// valueFlagIntegral marks a value vector encoded as zig-zag varints.
const valueFlagIntegral = 1 << 0

// appendValues appends the value-vector encoding of vals.
func appendValues(dst []byte, vals []float64) []byte {
	if integral(vals) {
		dst = append(dst, valueFlagIntegral)
		for _, v := range vals {
			dst = AppendVarint(dst, int64(v))
		}
		return dst
	}
	dst = append(dst, 0)
	for _, v := range vals {
		bits := math.Float64bits(v)
		dst = append(dst,
			byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24),
			byte(bits>>32), byte(bits>>40), byte(bits>>48), byte(bits>>56))
	}
	return dst
}

// decodeValues consumes a value vector of n values.
func decodeValues(data []byte, n int) ([]float64, []byte, error) {
	if len(data) < 1 {
		return nil, nil, fmt.Errorf("%w: missing value flags", ErrMalformed)
	}
	flags := data[0]
	data = data[1:]
	if flags&^byte(valueFlagIntegral) != 0 {
		return nil, nil, fmt.Errorf("%w: unknown value flags %#x", ErrMalformed, flags)
	}
	out := make([]float64, n)
	if flags&valueFlagIntegral != 0 {
		for i := range out {
			v, rest, err := Varint(data)
			if err != nil {
				return nil, nil, err
			}
			out[i], data = float64(v), rest
		}
		return out, data, nil
	}
	if len(data) < 8*n {
		return nil, nil, fmt.Errorf("%w: truncated float values", ErrMalformed)
	}
	for i := range out {
		b := data[8*i:]
		bits := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
			uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
		out[i] = math.Float64frombits(bits)
	}
	return out, data[8*n:], nil
}

// integral reports whether every value is a whole number representable
// as an int64 (the exactness condition for the varint form). Negative
// zero is excluded: int64 cannot carry its sign bit back.
func integral(vals []float64) bool {
	for _, v := range vals {
		if v != math.Trunc(v) || v < math.MinInt64 || v >= math.MaxInt64 ||
			(v == 0 && math.Signbit(v)) {
			return false
		}
	}
	return true
}

// valuesSize returns the encoded size of a value vector.
func valuesSize(vals []float64) int {
	n := 1
	if integral(vals) {
		for _, v := range vals {
			n += varintLen(int64(v))
		}
		return n
	}
	return n + 8*len(vals)
}

// AppendTFQuery appends the framed encoding of a column query.
func AppendTFQuery(dst []byte, q *core.TFQuery) []byte {
	payload := make([]byte, 0, 2+2*len(q.Cols))
	payload = AppendUvarint(payload, uint64(len(q.Cols)))
	for _, c := range q.Cols {
		payload = AppendUvarint(payload, uint64(c))
	}
	return Pack(dst, payload)
}

// SizeTFQuery returns the framed (uncompressed) encoded size.
func SizeTFQuery(q *core.TFQuery) int64 {
	n := uvarintLen(uint64(len(q.Cols)))
	for _, c := range q.Cols {
		n += uvarintLen(uint64(c))
	}
	return PackedSize(n)
}

// DecodeTFQuery decodes a framed column query.
func DecodeTFQuery(data []byte) (*core.TFQuery, error) {
	payload, err := Unpack(data)
	if err != nil {
		return nil, err
	}
	n, rest, err := Uvarint(payload)
	if err != nil {
		return nil, err
	}
	if err := checkCount(n, rest); err != nil {
		return nil, err
	}
	cols := make([]uint32, n)
	for i := range cols {
		v, r, err := Uvarint(rest)
		if err != nil {
			return nil, err
		}
		if v > math.MaxUint32 {
			return nil, fmt.Errorf("%w: column index out of range", ErrMalformed)
		}
		cols[i], rest = uint32(v), r
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes", ErrMalformed)
	}
	return &core.TFQuery{Cols: cols}, nil
}

// AppendTFResponse appends the framed encoding of a TF reply.
func AppendTFResponse(dst []byte, r *core.TFResponse) []byte {
	payload := make([]byte, 0, 2+valuesSize(r.Values))
	payload = AppendUvarint(payload, uint64(len(r.Values)))
	payload = appendValues(payload, r.Values)
	return Pack(dst, payload)
}

// SizeTFResponse returns the framed (uncompressed) encoded size.
func SizeTFResponse(r *core.TFResponse) int64 {
	return PackedSize(uvarintLen(uint64(len(r.Values))) + valuesSize(r.Values))
}

// DecodeTFResponse decodes a framed TF reply.
func DecodeTFResponse(data []byte) (*core.TFResponse, error) {
	payload, err := Unpack(data)
	if err != nil {
		return nil, err
	}
	n, rest, err := Uvarint(payload)
	if err != nil {
		return nil, err
	}
	if err := checkCount(n, rest); err != nil {
		return nil, err
	}
	vals, rest, err := decodeValues(rest, int(n))
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes", ErrMalformed)
	}
	return &core.TFResponse{Values: vals}, nil
}

// appendIDs appends n document ids as a zig-zag varint start plus
// deltas.
func appendIDs(dst []byte, ids []int32) []byte {
	prev := int64(0)
	for i, id := range ids {
		if i == 0 {
			dst = AppendVarint(dst, int64(id))
		} else {
			dst = AppendVarint(dst, int64(id)-prev)
		}
		prev = int64(id)
	}
	return dst
}

// idsSize returns the encoded size of a document id run.
func idsSize(ids []int32) int {
	n, prev := 0, int64(0)
	for i, id := range ids {
		if i == 0 {
			n += varintLen(int64(id))
		} else {
			n += varintLen(int64(id) - prev)
		}
		prev = int64(id)
	}
	return n
}

// decodeIDs consumes n delta-coded document ids.
func decodeIDs(data []byte, n int) ([]int32, []byte, error) {
	out := make([]int32, n)
	prev := int64(0)
	for i := range out {
		d, rest, err := Varint(data)
		if err != nil {
			return nil, nil, err
		}
		v := prev
		if i == 0 {
			v = d
		} else {
			v += d
		}
		if v < math.MinInt32 || v > math.MaxInt32 {
			return nil, nil, fmt.Errorf("%w: document id out of range", ErrMalformed)
		}
		out[i], prev, data = int32(v), v, rest
	}
	return out, data, nil
}

// AppendRTKResponse appends the framed encoding of an RTK reply — the
// protocol's dominant payload (z cells of up to alpha*K entries each).
func AppendRTKResponse(dst []byte, r *core.RTKResponse) []byte {
	payload := make([]byte, 0, sizeRTKPayload(r))
	payload = AppendUvarint(payload, uint64(len(r.Cells)))
	for i := range r.Cells {
		c := &r.Cells[i]
		payload = AppendUvarint(payload, uint64(len(c.IDs)))
		payload = appendIDs(payload, c.IDs)
		payload = appendValues(payload, c.Values)
	}
	return Pack(dst, payload)
}

// sizeRTKPayload returns the unframed payload size of an RTK reply.
func sizeRTKPayload(r *core.RTKResponse) int {
	n := uvarintLen(uint64(len(r.Cells)))
	for i := range r.Cells {
		c := &r.Cells[i]
		n += uvarintLen(uint64(len(c.IDs))) + idsSize(c.IDs) + valuesSize(c.Values)
	}
	return n
}

// SizeRTKResponse returns the framed (uncompressed) encoded size — the
// number the transport byte accounting records per relayed reply.
func SizeRTKResponse(r *core.RTKResponse) int64 {
	return PackedSize(sizeRTKPayload(r))
}

// DecodeRTKResponse decodes a framed RTK reply. A malformed input
// returns ErrMalformed; element counts are validated against the bytes
// actually present before any allocation sized by them.
func DecodeRTKResponse(data []byte) (*core.RTKResponse, error) {
	payload, err := Unpack(data)
	if err != nil {
		return nil, err
	}
	ncells, rest, err := Uvarint(payload)
	if err != nil {
		return nil, err
	}
	if err := checkCount(ncells, rest); err != nil {
		return nil, err
	}
	out := &core.RTKResponse{Cells: make([]core.RTKCell, ncells)}
	for i := range out.Cells {
		n, r2, err := Uvarint(rest)
		if err != nil {
			return nil, err
		}
		if err := checkCount(n, r2); err != nil {
			return nil, err
		}
		ids, r3, err := decodeIDs(r2, int(n))
		if err != nil {
			return nil, err
		}
		vals, r4, err := decodeValues(r3, int(n))
		if err != nil {
			return nil, err
		}
		out.Cells[i] = core.RTKCell{IDs: ids, Values: vals}
		rest = r4
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes", ErrMalformed)
	}
	return out, nil
}

// AppendModel appends the framed encoding of a linear ranking model: a
// uvarint weight count followed by one value vector holding the weights
// and then the bias. This is the hop payload of round-robin training
// relays, so BytesRelayed reflects real encoded bytes rather than a
// fixed per-weight estimate.
func AppendModel(dst []byte, w []float64, b float64) []byte {
	vals := make([]float64, 0, len(w)+1)
	vals = append(vals, w...)
	vals = append(vals, b)
	payload := make([]byte, 0, 2+valuesSize(vals))
	payload = AppendUvarint(payload, uint64(len(w)))
	payload = appendValues(payload, vals)
	return Pack(dst, payload)
}

// SizeModel returns the framed (uncompressed) encoded size of a model.
func SizeModel(w []float64, b float64) int64 {
	vals := make([]float64, 0, len(w)+1)
	vals = append(vals, w...)
	vals = append(vals, b)
	return PackedSize(uvarintLen(uint64(len(w))) + valuesSize(vals))
}

// DecodeModel decodes a framed linear model.
func DecodeModel(data []byte) ([]float64, float64, error) {
	payload, err := Unpack(data)
	if err != nil {
		return nil, 0, err
	}
	n, rest, err := Uvarint(payload)
	if err != nil {
		return nil, 0, err
	}
	if err := checkCount(n, rest); err != nil {
		return nil, 0, err
	}
	vals, rest, err := decodeValues(rest, int(n)+1)
	if err != nil {
		return nil, 0, err
	}
	if len(rest) != 0 {
		return nil, 0, fmt.Errorf("%w: trailing bytes", ErrMalformed)
	}
	return vals[:n], vals[n], nil
}

// AppendEntries appends the framed encoding of a run of RTK heap
// entries (delta-coded ids, zig-zag varint values) — the persistence
// and debugging form of one cell's content.
func AppendEntries(dst []byte, es []core.Entry) []byte {
	payload := make([]byte, 0, 2+3*len(es))
	payload = AppendUvarint(payload, uint64(len(es)))
	prev := int64(0)
	for i, e := range es {
		if i == 0 {
			payload = AppendVarint(payload, int64(e.DocID))
		} else {
			payload = AppendVarint(payload, int64(e.DocID)-prev)
		}
		prev = int64(e.DocID)
		payload = AppendVarint(payload, e.Value)
	}
	return Pack(dst, payload)
}

// DecodeEntries decodes a framed entry run.
func DecodeEntries(data []byte) ([]core.Entry, error) {
	payload, err := Unpack(data)
	if err != nil {
		return nil, err
	}
	n, rest, err := Uvarint(payload)
	if err != nil {
		return nil, err
	}
	if err := checkCount(n, rest); err != nil {
		return nil, err
	}
	out := make([]core.Entry, n)
	prev := int64(0)
	for i := range out {
		d, r2, err := Varint(rest)
		if err != nil {
			return nil, err
		}
		id := prev
		if i == 0 {
			id = d
		} else {
			id += d
		}
		if id < math.MinInt32 || id > math.MaxInt32 {
			return nil, fmt.Errorf("%w: document id out of range", ErrMalformed)
		}
		v, r3, err := Varint(r2)
		if err != nil {
			return nil, err
		}
		out[i], prev, rest = core.Entry{DocID: int32(id), Value: v}, id, r3
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes", ErrMalformed)
	}
	return out, nil
}

// AppendRowMatrix appends the framed encoding of a sketch row matrix
// (z rows by w columns of signed counts, row-major zig-zag varints) —
// the bulk form of a standard sketch table's content.
func AppendRowMatrix(dst []byte, rows [][]int64) []byte {
	payload := AppendUvarint(nil, uint64(len(rows)))
	for _, row := range rows {
		payload = AppendUvarint(payload, uint64(len(row)))
		for _, v := range row {
			payload = AppendVarint(payload, v)
		}
	}
	return Pack(dst, payload)
}

// DecodeRowMatrix decodes a framed sketch row matrix.
func DecodeRowMatrix(data []byte) ([][]int64, error) {
	payload, err := Unpack(data)
	if err != nil {
		return nil, err
	}
	z, rest, err := Uvarint(payload)
	if err != nil {
		return nil, err
	}
	if err := checkCount(z, rest); err != nil {
		return nil, err
	}
	out := make([][]int64, z)
	for i := range out {
		w, r2, err := Uvarint(rest)
		if err != nil {
			return nil, err
		}
		if err := checkCount(w, r2); err != nil {
			return nil, err
		}
		row := make([]int64, w)
		rest = r2
		for j := range row {
			v, r3, err := Varint(rest)
			if err != nil {
				return nil, err
			}
			row[j], rest = v, r3
		}
		out[i] = row
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes", ErrMalformed)
	}
	return out, nil
}
