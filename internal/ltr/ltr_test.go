package ltr

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestLinearModelScore(t *testing.T) {
	m := &LinearModel{W: []float64{1, -2, 0.5}, B: 3}
	if got := m.Score([]float64{2, 1, 4}); got != 3+2-2+2 {
		t.Fatalf("Score = %v", got)
	}
	// Short vector: zero-padded.
	if got := m.Score([]float64{2}); got != 5 {
		t.Fatalf("short Score = %v", got)
	}
	if got := m.Score(nil); got != 3 {
		t.Fatalf("nil Score = %v", got)
	}
}

func TestLinearModelClone(t *testing.T) {
	m := &LinearModel{W: []float64{1, 2}, B: 0.5}
	c := m.Clone()
	c.W[0] = 99
	c.B = 99
	if m.W[0] != 1 || m.B != 0.5 {
		t.Fatal("Clone must be independent")
	}
	if NewLinearModel(4).Dim() != 4 {
		t.Fatal("Dim wrong")
	}
}

func TestAverage(t *testing.T) {
	a := &LinearModel{W: []float64{2, 4}, B: 1}
	b := &LinearModel{W: []float64{4, 0}, B: 3}
	avg, err := average([]*LinearModel{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if avg.W[0] != 3 || avg.W[1] != 2 || avg.B != 2 {
		t.Fatalf("average = %+v", avg)
	}
	if _, err := average(nil); !errors.Is(err, ErrBadData) {
		t.Fatal("empty average should error")
	}
	if _, err := average([]*LinearModel{a, NewLinearModel(3)}); !errors.Is(err, ErrBadData) {
		t.Fatal("dim mismatch should error")
	}
}

func TestSGDConfigValidate(t *testing.T) {
	if err := DefaultSGDConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*SGDConfig){
		func(c *SGDConfig) { c.LearningRate = 0 },
		func(c *SGDConfig) { c.LRDecay = 0 },
		func(c *SGDConfig) { c.LRDecay = 1.5 },
		func(c *SGDConfig) { c.Epochs = 0 },
		func(c *SGDConfig) { c.BatchSize = 0 },
		func(c *SGDConfig) { c.L2 = -1 },
		func(c *SGDConfig) { c.Loss = Loss(9) },
	}
	for i, mut := range bad {
		c := DefaultSGDConfig()
		mut(&c)
		if err := c.Validate(); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("case %d: expected ErrBadConfig, got %v", i, err)
		}
	}
}

// synthLinear builds a noisy linear-regression dataset whose true weights
// are known.
func synthLinear(n int, seed int64) ([]Instance, []float64) {
	trueW := []float64{1.5, -2.0, 0.7}
	rng := rand.New(rand.NewSource(seed))
	data := make([]Instance, n)
	for i := range data {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		y := 0.3
		for j, w := range trueW {
			y += w * x[j]
		}
		y += 0.05 * rng.NormFloat64()
		data[i] = Instance{Features: x, Label: y, QueryKey: "q"}
	}
	return data, trueW
}

func TestSGDLearnsLinear(t *testing.T) {
	data, trueW := synthLinear(2000, 1)
	cfg := DefaultSGDConfig()
	cfg.Epochs = 60
	m := NewLinearModel(3)
	if err := cfg.Train(m, data); err != nil {
		t.Fatal(err)
	}
	for i, w := range trueW {
		if math.Abs(m.W[i]-w) > 0.1 {
			t.Fatalf("weight %d: got %v, want ~%v (model %+v)", i, m.W[i], w, m)
		}
	}
	if math.Abs(m.B-0.3) > 0.1 {
		t.Fatalf("bias %v, want ~0.3", m.B)
	}
}

func TestSGDLogisticSeparates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var data []Instance
	for i := 0; i < 1000; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		label := 0.0
		if x[0]+x[1] > 0 {
			label = 2 // graded positive
		}
		data = append(data, Instance{Features: x, Label: label, QueryKey: "q"})
	}
	cfg := DefaultSGDConfig()
	cfg.Loss = LogisticLoss
	cfg.Epochs = 50
	m := NewLinearModel(2)
	if err := cfg.Train(m, data); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, inst := range data {
		pred := m.Score(inst.Features) > 0
		if pred == (inst.Label > 0) {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(data)); acc < 0.95 {
		t.Fatalf("logistic accuracy %v too low", acc)
	}
}

func TestTrainErrors(t *testing.T) {
	cfg := DefaultSGDConfig()
	m := NewLinearModel(2)
	if err := cfg.Train(m, nil); !errors.Is(err, ErrBadData) {
		t.Fatal("empty data should error")
	}
	bad := []Instance{{Features: []float64{1, 2, 3}, Label: 1, QueryKey: "q"}}
	if err := cfg.Train(m, bad); !errors.Is(err, ErrBadData) {
		t.Fatal("dim mismatch should error")
	}
	cfg.Epochs = 0
	if err := cfg.Train(m, bad); !errors.Is(err, ErrBadConfig) {
		t.Fatal("bad config should error")
	}
}

func TestTrainDeterministic(t *testing.T) {
	data, _ := synthLinear(500, 3)
	cfg := DefaultSGDConfig()
	m1 := NewLinearModel(3)
	m2 := NewLinearModel(3)
	if err := cfg.Train(m1, data); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Train(m2, data); err != nil {
		t.Fatal(err)
	}
	for i := range m1.W {
		if m1.W[i] != m2.W[i] {
			t.Fatal("training is not deterministic for a fixed seed")
		}
	}
}

func TestRoundRobinMatchesCentralized(t *testing.T) {
	data, trueW := synthLinear(2000, 4)
	parts := [][]Instance{data[:500], data[500:1000], data[1000:1500], data[1500:]}
	cfg := DefaultSGDConfig()
	m, err := TrainRoundRobin(3, parts, 40, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range trueW {
		if math.Abs(m.W[i]-w) > 0.15 {
			t.Fatalf("round-robin weight %d: got %v, want ~%v", i, m.W[i], w)
		}
	}
}

func TestFedAvgMatchesCentralized(t *testing.T) {
	data, trueW := synthLinear(2000, 5)
	parts := [][]Instance{data[:1000], data[1000:]}
	cfg := DefaultSGDConfig()
	m, err := TrainFedAvg(3, parts, 40, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range trueW {
		if math.Abs(m.W[i]-w) > 0.15 {
			t.Fatalf("fedavg weight %d: got %v, want ~%v", i, m.W[i], w)
		}
	}
}

func TestFederatedTrainersSkipEmptyParties(t *testing.T) {
	data, _ := synthLinear(400, 6)
	parts := [][]Instance{nil, data, {}}
	if _, err := TrainRoundRobin(3, parts, 5, DefaultSGDConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := TrainFedAvg(3, parts, 5, DefaultSGDConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := TrainRoundRobin(3, [][]Instance{nil, {}}, 5, DefaultSGDConfig()); !errors.Is(err, ErrBadData) {
		t.Fatal("all-empty should error")
	}
	if _, err := TrainRoundRobin(3, parts, 0, DefaultSGDConfig()); !errors.Is(err, ErrBadConfig) {
		t.Fatal("zero rounds should error")
	}
}

func TestPairwiseImprovesRanking(t *testing.T) {
	// Two-feature ranking problem: relevance driven by feature 0; feature 1
	// is noise.
	rng := rand.New(rand.NewSource(7))
	var data []Instance
	for q := 0; q < 30; q++ {
		key := string(rune('a' + q%26))
		for d := 0; d < 10; d++ {
			rel := float64(d % 3)
			x := []float64{rel + 0.3*rng.NormFloat64(), rng.NormFloat64()}
			data = append(data, Instance{Features: x, Label: rel, QueryKey: key + "x"})
		}
	}
	m := NewLinearModel(2)
	cfg := DefaultPairwiseConfig()
	if err := cfg.TrainPairwise(m, data); err != nil {
		t.Fatal(err)
	}
	base := Evaluate(NewLinearModel(2), data) // untrained baseline
	trained := Evaluate(m, data)
	if trained.NDCG <= base.NDCG {
		t.Fatalf("pairwise training did not improve nDCG: %v vs %v", trained.NDCG, base.NDCG)
	}
	if m.W[0] <= 0 {
		t.Fatalf("weight on the informative feature should be positive: %v", m.W)
	}
}

func TestPairwiseErrors(t *testing.T) {
	cfg := DefaultPairwiseConfig()
	m := NewLinearModel(2)
	flat := []Instance{
		{Features: []float64{1, 0}, Label: 1, QueryKey: "q"},
		{Features: []float64{0, 1}, Label: 1, QueryKey: "q"},
	}
	if err := cfg.TrainPairwise(m, flat); !errors.Is(err, ErrBadData) {
		t.Fatal("no pairs should error")
	}
	cfg.LearningRate = 0
	if err := cfg.TrainPairwise(m, flat); !errors.Is(err, ErrBadConfig) {
		t.Fatal("bad config should error")
	}
}

func TestDCGHandComputed(t *testing.T) {
	// labels ranked [2, 1, 0]: DCG = 3/1 + 1/log2(3) + 0.
	want := 3 + 1/math.Log2(3)
	if got := DCGAt([]float64{2, 1, 0}, 0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("DCG = %v, want %v", got, want)
	}
	// Truncation at 1 keeps only the first gain.
	if got := DCGAt([]float64{2, 1, 0}, 1); got != 3 {
		t.Fatalf("DCG@1 = %v", got)
	}
	if DCGAt(nil, 0) != 0 {
		t.Fatal("empty DCG should be 0")
	}
}

func TestNDCGHandComputed(t *testing.T) {
	// Perfect ranking: nDCG = 1.
	if got, ok := NDCGAt([]float64{2, 1, 0}, 0); !ok || math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect nDCG = %v, %v", got, ok)
	}
	// Worst ranking of the same labels.
	worst, ok := NDCGAt([]float64{0, 1, 2}, 0)
	if !ok || worst >= 1 {
		t.Fatalf("worst nDCG = %v", worst)
	}
	wantWorst := (1/math.Log2(3) + 3/math.Log2(4)) / (3 + 1/math.Log2(3))
	if math.Abs(worst-wantWorst) > 1e-12 {
		t.Fatalf("worst nDCG = %v, want %v", worst, wantWorst)
	}
	// All-zero labels: undefined.
	if _, ok := NDCGAt([]float64{0, 0}, 0); ok {
		t.Fatal("all-zero labels should report !ok")
	}
}

func TestERRHandComputed(t *testing.T) {
	// Single maximally relevant doc at rank 1: ERR = R(2) = 3/4.
	if got := ERRAt([]float64{2}, 0); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("ERR = %v, want 0.75", got)
	}
	// [2, 2]: 3/4 + (1/2)*(1/4)*(3/4).
	want := 0.75 + 0.5*0.25*0.75
	if got := ERRAt([]float64{2, 2}, 0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ERR = %v, want %v", got, want)
	}
	// Irrelevant-only ranking: 0.
	if got := ERRAt([]float64{0, 0, 0}, 0); got != 0 {
		t.Fatalf("ERR = %v, want 0", got)
	}
	// Truncation.
	if got := ERRAt([]float64{0, 2}, 1); got != 0 {
		t.Fatalf("ERR@1 = %v, want 0", got)
	}
}

func TestERRRankSensitivity(t *testing.T) {
	good := ERRAt([]float64{2, 0, 0}, 0)
	bad := ERRAt([]float64{0, 0, 2}, 0)
	if good <= bad {
		t.Fatalf("ERR should prefer early relevance: %v vs %v", good, bad)
	}
}

func TestEvaluate(t *testing.T) {
	// Model scores by feature 0; two queries with known best ordering.
	m := &LinearModel{W: []float64{1}, B: 0}
	data := []Instance{
		{Features: []float64{3}, Label: 2, QueryKey: "q1"},
		{Features: []float64{2}, Label: 1, QueryKey: "q1"},
		{Features: []float64{1}, Label: 0, QueryKey: "q1"},
		{Features: []float64{1}, Label: 2, QueryKey: "q2"}, // inverted
		{Features: []float64{2}, Label: 0, QueryKey: "q2"},
	}
	got := Evaluate(m, data)
	// q1 is perfectly ranked (nDCG 1), q2 inverted.
	q2ndcg, _ := NDCGAt([]float64{0, 2}, 0)
	wantNDCG := (1 + q2ndcg) / 2
	if math.Abs(got.NDCG-wantNDCG) > 1e-12 {
		t.Fatalf("Evaluate NDCG = %v, want %v", got.NDCG, wantNDCG)
	}
	wantERR := (ERRAt([]float64{2, 1, 0}, 0) + ERRAt([]float64{0, 2}, 0)) / 2
	if math.Abs(got.ERR-wantERR) > 1e-12 {
		t.Fatalf("Evaluate ERR = %v, want %v", got.ERR, wantERR)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	got := Evaluate(NewLinearModel(2), nil)
	if got.ERR != 0 || got.NDCG != 0 || got.NDCG10 != 0 {
		t.Fatalf("empty Evaluate = %+v", got)
	}
}

func TestEvaluateDeterministicTies(t *testing.T) {
	m := NewLinearModel(1) // scores everything 0: full ties
	data := []Instance{
		{Features: []float64{0}, Label: 2, QueryKey: "q"},
		{Features: []float64{0}, Label: 0, QueryKey: "q"},
	}
	a := Evaluate(m, data)
	b := Evaluate(m, data)
	if a != b {
		t.Fatal("tie-breaking is not deterministic")
	}
}

func TestGroupByQuery(t *testing.T) {
	data := []Instance{
		{QueryKey: "a"}, {QueryKey: "b"}, {QueryKey: "a"},
	}
	g := GroupByQuery(data)
	if len(g) != 2 || len(g["a"]) != 2 || len(g["b"]) != 1 {
		t.Fatalf("GroupByQuery = %v", g)
	}
}

func BenchmarkSGDEpoch(b *testing.B) {
	data, _ := synthLinear(5000, 1)
	cfg := DefaultSGDConfig()
	cfg.Epochs = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewLinearModel(3)
		if err := cfg.Train(m, data); err != nil {
			b.Fatal(err)
		}
	}
}
