package ltr

import (
	"math"
	"sort"
)

// Metrics bundles the three evaluation measures reported in Table I and
// Fig. 6 of the paper.
type Metrics struct {
	ERR    float64
	NDCG   float64
	NDCG10 float64
}

// GroupByQuery splits instances by QueryKey, preserving order within each
// group.
func GroupByQuery(data []Instance) map[string][]Instance {
	out := make(map[string][]Instance)
	for _, inst := range data {
		out[inst.QueryKey] = append(out[inst.QueryKey], inst)
	}
	return out
}

// maxGrade is the highest relevance grade (the paper's labels are 0/1/2).
const maxGrade = 2.0

// errGain is the ERR stopping probability R(g) = (2^g - 1) / 2^gmax.
func errGain(g float64) float64 {
	return (math.Pow(2, g) - 1) / math.Pow(2, maxGrade)
}

// ERRAt computes the Expected Reciprocal Rank of a label sequence already
// ordered by the system's ranking, truncated at k (k <= 0 means no
// truncation).
func ERRAt(labels []float64, k int) float64 {
	if k <= 0 || k > len(labels) {
		k = len(labels)
	}
	err := 0.0
	notSatisfied := 1.0
	for r := 0; r < k; r++ {
		p := errGain(labels[r])
		err += notSatisfied * p / float64(r+1)
		notSatisfied *= 1 - p
	}
	return err
}

// DCGAt computes the Discounted Cumulative Gain (2^g - 1 gains, log2
// discounts) of a ranked label sequence truncated at k (k <= 0 means no
// truncation).
func DCGAt(labels []float64, k int) float64 {
	if k <= 0 || k > len(labels) {
		k = len(labels)
	}
	dcg := 0.0
	for r := 0; r < k; r++ {
		dcg += (math.Pow(2, labels[r]) - 1) / math.Log2(float64(r+2))
	}
	return dcg
}

// NDCGAt computes the normalized DCG of a ranked label sequence. Queries
// whose ideal DCG is zero (no relevant documents) return ok=false and
// should be skipped when averaging.
func NDCGAt(labels []float64, k int) (ndcg float64, ok bool) {
	ideal := append([]float64(nil), labels...)
	sort.Sort(sort.Reverse(sort.Float64Slice(ideal)))
	idcg := DCGAt(ideal, k)
	if idcg == 0 {
		return 0, false
	}
	return DCGAt(labels, k) / idcg, true
}

// Evaluate ranks each query's instances by model score and averages ERR,
// nDCG and nDCG@10 over queries. Queries without any relevant document
// are skipped for nDCG (their ideal DCG is zero) but still contribute 0
// to ERR, matching the usual treatment.
func Evaluate(m Model, data []Instance) Metrics {
	groups := GroupByQuery(data)
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sumERR, sumNDCG, sumNDCG10 float64
	var nQueries, nNDCG int
	for _, key := range keys {
		insts := groups[key]
		order := sortByScore(m, insts)
		labels := make([]float64, len(order))
		for i, oi := range order {
			labels[i] = insts[oi].Label
		}
		sumERR += ERRAt(labels, 0)
		nQueries++
		if v, ok := NDCGAt(labels, 0); ok {
			sumNDCG += v
			nNDCG++
		}
		if v, ok := NDCGAt(labels, 10); ok {
			sumNDCG10 += v
		}
	}
	var out Metrics
	if nQueries > 0 {
		out.ERR = sumERR / float64(nQueries)
	}
	if nNDCG > 0 {
		out.NDCG = sumNDCG / float64(nNDCG)
		out.NDCG10 = sumNDCG10 / float64(nNDCG)
	}
	return out
}
