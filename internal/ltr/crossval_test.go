package ltr

import (
	"errors"
	"testing"
)

func TestKFoldByQuery(t *testing.T) {
	data := listwiseData(10, 6, 1) // 10 queries x 6 instances
	folds, err := KFoldByQuery(data, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("got %d folds", len(folds))
	}
	evalTotal := 0
	for fi, fold := range folds {
		if len(fold.Train)+len(fold.Eval) != len(data) {
			t.Fatalf("fold %d does not partition the data", fi)
		}
		evalTotal += len(fold.Eval)
		// No query straddles train and eval.
		evalQ := map[string]struct{}{}
		for _, inst := range fold.Eval {
			evalQ[inst.QueryKey] = struct{}{}
		}
		for _, inst := range fold.Train {
			if _, leak := evalQ[inst.QueryKey]; leak {
				t.Fatalf("fold %d: query %s in both splits", fi, inst.QueryKey)
			}
		}
	}
	if evalTotal != len(data) {
		t.Fatalf("eval splits cover %d of %d instances", evalTotal, len(data))
	}
}

func TestKFoldDeterministic(t *testing.T) {
	data := listwiseData(8, 4, 2)
	a, err := KFoldByQuery(data, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KFoldByQuery(data, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if len(a[i].Eval) != len(b[i].Eval) {
			t.Fatal("folds differ across identical calls")
		}
		for j := range a[i].Eval {
			if a[i].Eval[j].QueryKey != b[i].Eval[j].QueryKey {
				t.Fatal("fold contents differ")
			}
		}
	}
	c, err := KFoldByQuery(data, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		for j := range a[i].Eval {
			if j >= len(c[i].Eval) || a[i].Eval[j].QueryKey != c[i].Eval[j].QueryKey {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical folds (suspicious)")
	}
}

func TestKFoldErrors(t *testing.T) {
	data := listwiseData(3, 4, 1)
	if _, err := KFoldByQuery(data, 1, 1); !errors.Is(err, ErrBadConfig) {
		t.Fatal("k=1 should error")
	}
	if _, err := KFoldByQuery(data, 5, 1); !errors.Is(err, ErrBadData) {
		t.Fatal("more folds than queries should error")
	}
}

func TestCrossValidate(t *testing.T) {
	data := listwiseData(12, 8, 3)
	cfg := DefaultSGDConfig()
	cfg.Epochs = 10
	m, err := CrossValidate(2, data, 4, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.NDCG <= 0.5 {
		t.Fatalf("cross-validated nDCG %v too low on an easy problem", m.NDCG)
	}
	if m.ERR <= 0 || m.NDCG10 <= 0 {
		t.Fatalf("metrics missing: %+v", m)
	}
	// Errors propagate.
	bad := cfg
	bad.LearningRate = 0
	if _, err := CrossValidate(2, data, 4, bad, 1); err == nil {
		t.Fatal("bad config should error")
	}
	if _, err := CrossValidate(2, data, 100, cfg, 1); !errors.Is(err, ErrBadData) {
		t.Fatal("too many folds should error")
	}
}
