package ltr

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

// boundedLabels converts raw bytes to a label sequence in {0, 1, 2}.
func boundedLabels(raw []uint8) []float64 {
	out := make([]float64, len(raw))
	for i, r := range raw {
		out[i] = float64(r % 3)
	}
	return out
}

// TestNDCGBounds (property): nDCG is always in [0, 1], and the ideal
// (descending) ordering achieves exactly 1.
func TestNDCGBounds(t *testing.T) {
	check := func(raw []uint8) bool {
		labels := boundedLabels(raw)
		v, ok := NDCGAt(labels, 0)
		if !ok {
			// All-zero labels: skipping is the contract.
			for _, l := range labels {
				if l != 0 {
					return false
				}
			}
			return true
		}
		if v < 0 || v > 1+1e-12 {
			return false
		}
		ideal := append([]float64(nil), labels...)
		sort.Sort(sort.Reverse(sort.Float64Slice(ideal)))
		iv, ok := NDCGAt(ideal, 0)
		return ok && math.Abs(iv-1) < 1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestERRBounds (property): ERR is in [0, 1) for grades capped at 2, and
// moving a relevant document earlier never decreases it.
func TestERRBounds(t *testing.T) {
	check := func(raw []uint8) bool {
		labels := boundedLabels(raw)
		v := ERRAt(labels, 0)
		if v < 0 || v >= 1 {
			return v == 0 && len(labels) == 0
		}
		// Swap the first adjacent (low, high) pair to promote relevance;
		// ERR must not decrease.
		promoted := append([]float64(nil), labels...)
		for i := 0; i+1 < len(promoted); i++ {
			if promoted[i] < promoted[i+1] {
				promoted[i], promoted[i+1] = promoted[i+1], promoted[i]
				break
			}
		}
		return ERRAt(promoted, 0) >= v-1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestDCGSwapMonotonicity (property): swapping a more relevant document
// into an earlier position never decreases DCG.
func TestDCGSwapMonotonicity(t *testing.T) {
	check := func(raw []uint8, aRaw, bRaw uint8) bool {
		labels := boundedLabels(raw)
		if len(labels) < 2 {
			return true
		}
		a := int(aRaw) % len(labels)
		b := int(bRaw) % len(labels)
		if a > b {
			a, b = b, a
		}
		if a == b || labels[a] >= labels[b] {
			return true
		}
		before := DCGAt(labels, 0)
		labels[a], labels[b] = labels[b], labels[a]
		return DCGAt(labels, 0) >= before-1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPrecisionRRConsistency (property): P@k > 0 iff a relevant document
// exists in the top k, which also lower-bounds the reciprocal rank.
func TestPrecisionRRConsistency(t *testing.T) {
	check := func(raw []uint8, kRaw uint8) bool {
		labels := boundedLabels(raw)
		k := 1 + int(kRaw)%10
		p := PrecisionAt(labels, k)
		rr := RRAt(labels)
		limit := k
		if limit > len(labels) {
			limit = len(labels)
		}
		hasRel := false
		for i := 0; i < limit; i++ {
			if labels[i] > 0 {
				hasRel = true
			}
		}
		if hasRel != (p > 0) {
			return false
		}
		if hasRel && rr < 1/float64(k) {
			return false // first relevant doc is within top k
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestModelScoreLinearity (property): Score is linear in the feature
// vector: Score(x+y) + Score(0) == Score(x) + Score(y) up to float error.
func TestModelScoreLinearity(t *testing.T) {
	m := &LinearModel{W: []float64{0.5, -2, 3, 0.25}, B: 1.5}
	check := func(a, b int16, c, d int16) bool {
		x := []float64{float64(a) / 16, float64(b) / 16, float64(c) / 16, float64(d) / 16}
		y := []float64{float64(d) / 16, float64(c) / 16, float64(b) / 16, float64(a) / 16}
		sum := make([]float64, 4)
		for i := range sum {
			sum[i] = x[i] + y[i]
		}
		lhs := m.Score(sum) + m.Score(make([]float64, 4))
		rhs := m.Score(x) + m.Score(y)
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
