package ltr

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// ExtendedMetrics adds the standard IR measures beyond the paper's three:
// mean average precision, mean reciprocal rank and precision at k.
// "Relevant" means label > 0 (the paper's labels 1 and 2).
type ExtendedMetrics struct {
	Metrics
	MAP float64
	MRR float64
	P10 float64
}

// APAt computes average precision of a ranked binary-relevance sequence
// (labels > 0 are relevant). Returns ok=false when no relevant documents
// exist.
func APAt(labels []float64) (float64, bool) {
	var hits int
	var sum float64
	for r, l := range labels {
		if l > 0 {
			hits++
			sum += float64(hits) / float64(r+1)
		}
	}
	if hits == 0 {
		return 0, false
	}
	return sum / float64(hits), true
}

// RRAt computes the reciprocal rank of the first relevant document, 0 if
// none.
func RRAt(labels []float64) float64 {
	for r, l := range labels {
		if l > 0 {
			return 1 / float64(r+1)
		}
	}
	return 0
}

// PrecisionAt computes the fraction of relevant documents in the top k.
func PrecisionAt(labels []float64, k int) float64 {
	if k <= 0 || len(labels) == 0 {
		return 0
	}
	if k > len(labels) {
		k = len(labels)
	}
	hits := 0
	for r := 0; r < k; r++ {
		if labels[r] > 0 {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// EvaluateExtended computes the full metric set over a test set.
func EvaluateExtended(m Model, data []Instance) ExtendedMetrics {
	out := ExtendedMetrics{Metrics: Evaluate(m, data)}
	groups := GroupByQuery(data)
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sumAP, sumRR, sumP10 float64
	var nAP, nQ int
	for _, key := range keys {
		insts := groups[key]
		order := sortByScore(m, insts)
		labels := make([]float64, len(order))
		for i, oi := range order {
			labels[i] = insts[oi].Label
		}
		if ap, ok := APAt(labels); ok {
			sumAP += ap
			nAP++
		}
		sumRR += RRAt(labels)
		sumP10 += PrecisionAt(labels, 10)
		nQ++
	}
	if nAP > 0 {
		out.MAP = sumAP / float64(nAP)
	}
	if nQ > 0 {
		out.MRR = sumRR / float64(nQ)
		out.P10 = sumP10 / float64(nQ)
	}
	return out
}

// modelMagic guards serialized models.
const modelMagic = uint32(0x4C4D4431) // "LMD1"

// ErrCorruptModel marks unreadable persisted models.
var ErrCorruptModel = errors.New("ltr: corrupt serialized model")

// WriteTo serializes the model (dimension, weights, bias).
func (m *LinearModel) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(modelMagic); err != nil {
		return n, err
	}
	if err := write(uint64(len(m.W))); err != nil {
		return n, err
	}
	if err := write(m.W); err != nil {
		return n, err
	}
	if err := write(m.B); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// ReadModel reconstructs a model serialized with WriteTo. It reads
// exactly the model's bytes, so other payloads may follow in the same
// stream (the trained-model bundle relies on this).
func ReadModel(r io.Reader) (*LinearModel, error) {
	var magic uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil || magic != modelMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptModel)
	}
	var dim uint64
	if err := binary.Read(r, binary.LittleEndian, &dim); err != nil || dim > 1<<20 {
		return nil, fmt.Errorf("%w: implausible dimension", ErrCorruptModel)
	}
	m := NewLinearModel(int(dim))
	if err := binary.Read(r, binary.LittleEndian, &m.W); err != nil {
		return nil, fmt.Errorf("%w: truncated weights", ErrCorruptModel)
	}
	if err := binary.Read(r, binary.LittleEndian, &m.B); err != nil {
		return nil, fmt.Errorf("%w: truncated bias", ErrCorruptModel)
	}
	return m, nil
}
