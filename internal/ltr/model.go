// Package ltr is the learning-to-rank substrate of the CS-F-LTR
// reproduction: pointwise linear models trained with SGD, the round-robin
// distributed SGD the paper uses for federated training ("we will apply a
// simple round-robin distributed SGD to train the LTR model"), an
// optional pairwise (RankNet-style) extension, and the evaluation metrics
// of Section VI (ERR, nDCG, nDCG@10).
package ltr

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Errors returned by this package.
var (
	ErrBadConfig = errors.New("ltr: invalid training configuration")
	ErrBadData   = errors.New("ltr: invalid training data")
)

// Instance is one pointwise training or evaluation sample: a feature
// vector, its graded relevance label (0, 1 or 2) and the query it belongs
// to (ranking metrics group by QueryKey).
type Instance struct {
	Features []float64
	Label    float64
	QueryKey string
}

// Model scores a feature vector; higher means more relevant.
type Model interface {
	Score(x []float64) float64
}

// LinearModel is the paper's pointwise ranking model: a linear scoring
// function w.x + b.
type LinearModel struct {
	W []float64
	B float64
}

// NewLinearModel returns a zero-initialized model of dimension dim.
func NewLinearModel(dim int) *LinearModel {
	return &LinearModel{W: make([]float64, dim)}
}

// Score returns w.x + b. Shorter x is treated as zero-padded.
func (m *LinearModel) Score(x []float64) float64 {
	s := m.B
	n := len(x)
	if len(m.W) < n {
		n = len(m.W)
	}
	for i := 0; i < n; i++ {
		s += m.W[i] * x[i]
	}
	return s
}

// Clone returns an independent copy of the model.
func (m *LinearModel) Clone() *LinearModel {
	return &LinearModel{W: append([]float64(nil), m.W...), B: m.B}
}

// Dim returns the model dimension.
func (m *LinearModel) Dim() int { return len(m.W) }

// average sets m to the uniform average of models (FedAvg-style
// aggregation, offered alongside round-robin training).
func average(models []*LinearModel) (*LinearModel, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("%w: no models to average", ErrBadData)
	}
	dim := models[0].Dim()
	out := NewLinearModel(dim)
	for _, m := range models {
		if m.Dim() != dim {
			return nil, fmt.Errorf("%w: model dimensions differ", ErrBadData)
		}
		for i, w := range m.W {
			out.W[i] += w
		}
		out.B += m.B
	}
	inv := 1 / float64(len(models))
	for i := range out.W {
		out.W[i] *= inv
	}
	out.B *= inv
	return out, nil
}

// sortByScore returns indexes of instances ordered by descending model
// score with deterministic tie-breaking by original position.
func sortByScore(m Model, instances []Instance) []int {
	idx := make([]int, len(instances))
	scores := make([]float64, len(instances))
	for i := range instances {
		idx[i] = i
		scores[i] = m.Score(instances[i].Features)
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return scores[idx[a]] > scores[idx[b]]
	})
	return idx
}

// clampFinite zeroes NaN/Inf gradients so one degenerate feature vector
// cannot destroy the model.
func clampFinite(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return x
}
