package ltr

import (
	"errors"
	"math/rand"
	"testing"
)

// listwiseData builds a ranking problem where feature 0 is informative
// and feature 1 is anti-informative noise a pointwise squared loss can be
// distracted by.
func listwiseData(nQueries, perQuery int, seed int64) []Instance {
	rng := rand.New(rand.NewSource(seed))
	var data []Instance
	for q := 0; q < nQueries; q++ {
		key := string(rune('a'+q%26)) + string(rune('0'+q/26))
		for d := 0; d < perQuery; d++ {
			rel := float64(d % 3)
			x := []float64{
				rel + 0.4*rng.NormFloat64(),
				rng.NormFloat64(),
			}
			data = append(data, Instance{Features: x, Label: rel, QueryKey: key})
		}
	}
	return data
}

func TestListwiseConfigValidate(t *testing.T) {
	if err := DefaultListwiseConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*ListwiseConfig){
		func(c *ListwiseConfig) { c.Passes = 0 },
		func(c *ListwiseConfig) { c.StepCount = 0 },
		func(c *ListwiseConfig) { c.StepBase = 0 },
		func(c *ListwiseConfig) { c.StepScale = 1 },
		func(c *ListwiseConfig) { c.Tolerance = -1 },
	}
	for i, mut := range bad {
		c := DefaultListwiseConfig()
		mut(&c)
		if err := c.Validate(); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("case %d: expected ErrBadConfig, got %v", i, err)
		}
	}
}

func TestListwiseImprovesNDCG(t *testing.T) {
	data := listwiseData(20, 12, 3)
	m := NewLinearModel(2)
	before := Evaluate(m, data).NDCG
	cfg := DefaultListwiseConfig()
	if err := cfg.TrainListwise(m, data); err != nil {
		t.Fatal(err)
	}
	after := Evaluate(m, data).NDCG
	if after <= before {
		t.Fatalf("listwise training did not improve nDCG: %v -> %v", before, after)
	}
	if after < 0.85 {
		t.Fatalf("listwise nDCG %v too low on an easy problem", after)
	}
	if m.W[0] <= 0 {
		t.Fatalf("informative weight should be positive: %v", m.W)
	}
}

func TestListwiseCustomMetric(t *testing.T) {
	data := listwiseData(10, 8, 5)
	m := NewLinearModel(2)
	cfg := DefaultListwiseConfig()
	cfg.Metric = func(mm Model, d []Instance) float64 { return Evaluate(mm, d).ERR }
	if err := cfg.TrainListwise(m, data); err != nil {
		t.Fatal(err)
	}
	if got := Evaluate(m, data).ERR; got < 0.5 {
		t.Fatalf("custom-metric training gave ERR %v", got)
	}
}

func TestListwiseErrors(t *testing.T) {
	cfg := DefaultListwiseConfig()
	if err := cfg.TrainListwise(NewLinearModel(2), nil); !errors.Is(err, ErrBadData) {
		t.Fatal("empty data should error")
	}
	cfg.Passes = 0
	if err := cfg.TrainListwise(NewLinearModel(2), listwiseData(2, 4, 1)); !errors.Is(err, ErrBadConfig) {
		t.Fatal("bad config should error")
	}
}

func TestListwiseDeterministic(t *testing.T) {
	data := listwiseData(10, 8, 7)
	a, b := NewLinearModel(2), NewLinearModel(2)
	cfg := DefaultListwiseConfig()
	if err := cfg.TrainListwise(a, data); err != nil {
		t.Fatal(err)
	}
	if err := cfg.TrainListwise(b, data); err != nil {
		t.Fatal(err)
	}
	for i := range a.W {
		if a.W[i] != b.W[i] {
			t.Fatal("listwise training not deterministic")
		}
	}
}

func TestRankByModel(t *testing.T) {
	m := &LinearModel{W: []float64{1}}
	data := []Instance{
		{Features: []float64{1}, Label: 0, QueryKey: "q1"},
		{Features: []float64{3}, Label: 2, QueryKey: "q1"},
		{Features: []float64{2}, Label: 1, QueryKey: "q0"},
	}
	order := RankByModel(m, data)
	// q0 first (sorted keys), then q1 by descending score.
	if len(order) != 3 || order[0] != 2 || order[1] != 1 || order[2] != 0 {
		t.Fatalf("RankByModel = %v", order)
	}
}
