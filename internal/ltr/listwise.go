package ltr

import (
	"fmt"
	"math/rand"
	"sort"
)

// ListwiseConfig configures coordinate-ascent listwise training
// (Metzler & Croft style): the optimizer directly maximizes a ranking
// metric by line-searching one model weight at a time. This is the
// "list-wise models" option the paper notes its framework is compatible
// with — it consumes exactly the same (features, label, query) instances
// as the pointwise trainer.
type ListwiseConfig struct {
	// Passes over all coordinates.
	Passes int
	// StepCount is the number of candidate step magnitudes per direction.
	StepCount int
	// StepBase is the smallest step magnitude; successive candidates
	// multiply by StepScale.
	StepBase  float64
	StepScale float64
	// Tolerance stops a pass early when no coordinate improved the
	// objective by more than this.
	Tolerance float64
	// Metric evaluates a candidate model on the training data; higher is
	// better. Nil means mean nDCG.
	Metric func(Model, []Instance) float64
	// Seed drives the coordinate visiting order.
	Seed int64
}

// DefaultListwiseConfig returns a robust setting for 16-dimensional
// feature vectors.
func DefaultListwiseConfig() ListwiseConfig {
	return ListwiseConfig{
		Passes:    8,
		StepCount: 6,
		StepBase:  0.05,
		StepScale: 2,
		Tolerance: 1e-5,
		Seed:      1,
	}
}

// Validate reports whether the configuration is usable.
func (c ListwiseConfig) Validate() error {
	switch {
	case c.Passes <= 0:
		return fmt.Errorf("%w: Passes=%d", ErrBadConfig, c.Passes)
	case c.StepCount <= 0:
		return fmt.Errorf("%w: StepCount=%d", ErrBadConfig, c.StepCount)
	case c.StepBase <= 0 || c.StepScale <= 1:
		return fmt.Errorf("%w: StepBase=%v StepScale=%v", ErrBadConfig, c.StepBase, c.StepScale)
	case c.Tolerance < 0:
		return fmt.Errorf("%w: Tolerance=%v", ErrBadConfig, c.Tolerance)
	}
	return nil
}

// meanNDCG is the default listwise objective.
func meanNDCG(m Model, data []Instance) float64 {
	return Evaluate(m, data).NDCG
}

// TrainListwise optimizes model in place by coordinate ascent on the
// configured ranking metric. Works with any Metric because it never
// differentiates — rankings are re-evaluated per candidate step.
func (c ListwiseConfig) TrainListwise(model *LinearModel, data []Instance) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("%w: empty training set", ErrBadData)
	}
	metric := c.Metric
	if metric == nil {
		metric = meanNDCG
	}
	rng := rand.New(rand.NewSource(c.Seed))
	dims := model.Dim()
	coords := make([]int, dims)
	for i := range coords {
		coords[i] = i
	}
	best := metric(model, data)
	for pass := 0; pass < c.Passes; pass++ {
		rng.Shuffle(dims, func(i, j int) { coords[i], coords[j] = coords[j], coords[i] })
		improvedBy := 0.0
		for _, dim := range coords {
			orig := model.W[dim]
			bestW := orig
			step := c.StepBase
			for s := 0; s < c.StepCount; s++ {
				for _, dir := range []float64{+1, -1} {
					model.W[dim] = orig + dir*step
					if v := metric(model, data); v > best {
						best = v
						bestW = model.W[dim]
					}
				}
				step *= c.StepScale
			}
			if bestW != orig {
				improvedBy += 1 // any accepted move counts as progress
			}
			model.W[dim] = bestW
		}
		if improvedBy == 0 {
			break
		}
	}
	return nil
}

// RankByModel returns data's indexes sorted by descending model score
// within each query, concatenated in sorted query order — a convenience
// for building ranked result lists from a scored dataset.
func RankByModel(m Model, data []Instance) []int {
	groups := make(map[string][]int)
	for i, inst := range data {
		groups[inst.QueryKey] = append(groups[inst.QueryKey], i)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []int
	for _, key := range keys {
		idxs := groups[key]
		scores := make([]float64, len(idxs))
		for i, di := range idxs {
			scores[i] = m.Score(data[di].Features)
		}
		order := make([]int, len(idxs))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })
		for _, oi := range order {
			out = append(out, idxs[oi])
		}
	}
	return out
}
