package ltr

import (
	"fmt"
	"math/rand"
	"sort"
)

// Fold is one train/eval split of a cross-validation run. Splitting is
// by QUERY, never by instance — instances of one query must stay
// together or ranking metrics leak across the split.
type Fold struct {
	Train []Instance
	Eval  []Instance
}

// KFoldByQuery partitions instances into k folds by query key (seeded
// shuffle of the query list). Queries distribute as evenly as possible;
// every instance appears in exactly one fold's Eval set and in the other
// k-1 folds' Train sets.
func KFoldByQuery(data []Instance, k int, seed int64) ([]Fold, error) {
	if k < 2 {
		return nil, fmt.Errorf("%w: k=%d (need >= 2)", ErrBadConfig, k)
	}
	groups := GroupByQuery(data)
	if len(groups) < k {
		return nil, fmt.Errorf("%w: only %d queries for %d folds", ErrBadData, len(groups), k)
	}
	keys := make([]string, 0, len(groups))
	for key := range groups {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	assignment := make(map[string]int, len(keys))
	for i, key := range keys {
		assignment[key] = i % k
	}
	folds := make([]Fold, k)
	for _, inst := range data {
		f := assignment[inst.QueryKey]
		for i := range folds {
			if i == f {
				folds[i].Eval = append(folds[i].Eval, inst)
			} else {
				folds[i].Train = append(folds[i].Train, inst)
			}
		}
	}
	return folds, nil
}

// CrossValidate trains a fresh zero-initialized linear model per fold
// with cfg and returns the mean metrics over the eval splits — the
// standard way to pick hyperparameters without touching the external
// test set.
func CrossValidate(dim int, data []Instance, k int, cfg SGDConfig, seed int64) (Metrics, error) {
	folds, err := KFoldByQuery(data, k, seed)
	if err != nil {
		return Metrics{}, err
	}
	var sum Metrics
	for i, fold := range folds {
		m := NewLinearModel(dim)
		foldCfg := cfg
		foldCfg.Seed = cfg.Seed + int64(i)
		if err := foldCfg.Train(m, fold.Train); err != nil {
			return Metrics{}, fmt.Errorf("ltr: fold %d: %w", i, err)
		}
		got := Evaluate(m, fold.Eval)
		sum.ERR += got.ERR
		sum.NDCG += got.NDCG
		sum.NDCG10 += got.NDCG10
	}
	n := float64(len(folds))
	return Metrics{ERR: sum.ERR / n, NDCG: sum.NDCG / n, NDCG10: sum.NDCG10 / n}, nil
}
