package ltr

import (
	"fmt"
	"math"
	"math/rand"
)

// Loss selects the pointwise training objective.
type Loss int

const (
	// SquaredLoss regresses the graded relevance label directly; the
	// default pointwise objective.
	SquaredLoss Loss = iota
	// LogisticLoss treats label > 0 as the positive class and trains a
	// binary classifier whose score ranks documents.
	LogisticLoss
)

// SGDConfig configures (mini-batch) stochastic gradient descent.
type SGDConfig struct {
	LearningRate float64 // initial step size
	LRDecay      float64 // multiplicative per-epoch decay (1 = constant)
	Epochs       int     // passes over the data
	BatchSize    int     // mini-batch size
	L2           float64 // L2 regularization strength (0 = off)
	Loss         Loss
	Seed         int64 // shuffling seed
}

// DefaultSGDConfig returns a setting that trains the 16-feature linear
// model reliably on normalized features.
func DefaultSGDConfig() SGDConfig {
	return SGDConfig{
		LearningRate: 0.05,
		LRDecay:      0.97,
		Epochs:       30,
		BatchSize:    32,
		L2:           1e-4,
		Loss:         SquaredLoss,
		Seed:         1,
	}
}

// Validate reports whether the configuration is usable.
func (c SGDConfig) Validate() error {
	switch {
	case c.LearningRate <= 0 || math.IsNaN(c.LearningRate):
		return fmt.Errorf("%w: LearningRate=%v", ErrBadConfig, c.LearningRate)
	case c.LRDecay <= 0 || c.LRDecay > 1:
		return fmt.Errorf("%w: LRDecay=%v", ErrBadConfig, c.LRDecay)
	case c.Epochs <= 0:
		return fmt.Errorf("%w: Epochs=%d", ErrBadConfig, c.Epochs)
	case c.BatchSize <= 0:
		return fmt.Errorf("%w: BatchSize=%d", ErrBadConfig, c.BatchSize)
	case c.L2 < 0:
		return fmt.Errorf("%w: L2=%v", ErrBadConfig, c.L2)
	case c.Loss != SquaredLoss && c.Loss != LogisticLoss:
		return fmt.Errorf("%w: unknown loss %d", ErrBadConfig, int(c.Loss))
	}
	return nil
}

// gradScale returns dL/dscore for one instance under the configured loss.
func (c SGDConfig) gradScale(score, label float64) float64 {
	switch c.Loss {
	case LogisticLoss:
		y := 0.0
		if label > 0 {
			y = 1
		}
		p := sigmoid(score)
		return p - y
	default:
		return score - label
	}
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// Train runs mini-batch SGD on model over data, in place. The caller owns
// model initialization (zero or warm start).
func (c SGDConfig) Train(model *LinearModel, data []Instance) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("%w: empty training set", ErrBadData)
	}
	for _, inst := range data {
		if len(inst.Features) != model.Dim() {
			return fmt.Errorf("%w: instance dim %d vs model dim %d",
				ErrBadData, len(inst.Features), model.Dim())
		}
	}
	rng := rand.New(rand.NewSource(c.Seed))
	order := rng.Perm(len(data))
	lr := c.LearningRate
	gradW := make([]float64, model.Dim())
	for epoch := 0; epoch < c.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += c.BatchSize {
			end := start + c.BatchSize
			if end > len(order) {
				end = len(order)
			}
			for i := range gradW {
				gradW[i] = 0
			}
			gradB := 0.0
			for _, oi := range order[start:end] {
				inst := data[oi]
				g := clampFinite(c.gradScale(model.Score(inst.Features), inst.Label))
				for i, x := range inst.Features {
					gradW[i] += g * x
				}
				gradB += g
			}
			inv := 1 / float64(end-start)
			for i := range model.W {
				model.W[i] -= lr * (gradW[i]*inv + c.L2*model.W[i])
			}
			model.B -= lr * gradB * inv
		}
		lr *= c.LRDecay
	}
	return nil
}

// TrainRoundRobin trains a single global model over per-party datasets
// with the paper's round-robin distributed SGD: in each round, parties
// take turns receiving the current global weights, running one local
// epoch on their own data, and passing the updated weights on (through
// the coordinating server in the deployed protocol). rounds full cycles
// are performed.
func TrainRoundRobin(dim int, partyData [][]Instance, rounds int, cfg SGDConfig) (*LinearModel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rounds <= 0 {
		return nil, fmt.Errorf("%w: rounds=%d", ErrBadConfig, rounds)
	}
	nonEmpty := 0
	for _, d := range partyData {
		nonEmpty += len(d)
	}
	if nonEmpty == 0 {
		return nil, fmt.Errorf("%w: all parties empty", ErrBadData)
	}
	model := NewLinearModel(dim)
	local := cfg
	local.Epochs = 1
	// Visit parties in a fresh random order each round: with a fixed
	// order the model drifts toward whichever party trains last, which
	// systematically biases the global model toward one silo's data
	// quality.
	orderRNG := rand.New(rand.NewSource(cfg.Seed + 7))
	order := make([]int, len(partyData))
	for i := range order {
		order[i] = i
	}
	for r := 0; r < rounds; r++ {
		local.LearningRate = cfg.LearningRate * math.Pow(cfg.LRDecay, float64(r))
		orderRNG.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, pi := range order {
			d := partyData[pi]
			if len(d) == 0 {
				continue
			}
			local.Seed = cfg.Seed + int64(r*len(partyData)+pi)
			if err := local.Train(model, d); err != nil {
				return nil, fmt.Errorf("ltr: round %d party %d: %w", r, pi, err)
			}
		}
	}
	return model, nil
}

// TrainFedAvg trains with federated averaging as an alternative
// aggregation strategy (the paper notes "other sophisticated methods are
// also compatible"): each round every party trains a copy of the global
// model locally for one epoch and the server averages the results.
func TrainFedAvg(dim int, partyData [][]Instance, rounds int, cfg SGDConfig) (*LinearModel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rounds <= 0 {
		return nil, fmt.Errorf("%w: rounds=%d", ErrBadConfig, rounds)
	}
	model := NewLinearModel(dim)
	local := cfg
	local.Epochs = 1
	for r := 0; r < rounds; r++ {
		local.LearningRate = cfg.LearningRate * math.Pow(cfg.LRDecay, float64(r))
		var updated []*LinearModel
		for pi, d := range partyData {
			if len(d) == 0 {
				continue
			}
			m := model.Clone()
			local.Seed = cfg.Seed + int64(r*len(partyData)+pi)
			if err := local.Train(m, d); err != nil {
				return nil, fmt.Errorf("ltr: fedavg round %d party %d: %w", r, pi, err)
			}
			updated = append(updated, m)
		}
		avg, err := average(updated)
		if err != nil {
			return nil, err
		}
		model = avg
	}
	return model, nil
}

// PairwiseConfig configures RankNet-style pairwise training, the
// "more complicated models" extension the paper mentions as compatible.
type PairwiseConfig struct {
	LearningRate float64
	Epochs       int
	L2           float64
	MaxPairs     int // cap on pairs per query per epoch (0 = all)
	Seed         int64
}

// DefaultPairwiseConfig returns a reasonable pairwise setting.
func DefaultPairwiseConfig() PairwiseConfig {
	return PairwiseConfig{LearningRate: 0.05, Epochs: 20, L2: 1e-4, MaxPairs: 200, Seed: 1}
}

// TrainPairwise trains model on preference pairs (i preferred over j when
// Label_i > Label_j within the same query) with the logistic pairwise
// loss log(1 + exp(-(s_i - s_j))).
func (c PairwiseConfig) TrainPairwise(model *LinearModel, data []Instance) error {
	if c.LearningRate <= 0 || c.Epochs <= 0 || c.L2 < 0 {
		return fmt.Errorf("%w: %+v", ErrBadConfig, c)
	}
	groups := GroupByQuery(data)
	rng := rand.New(rand.NewSource(c.Seed))
	type pair struct{ hi, lo int }
	// Precompute index pairs per query group (indexes into data).
	byQuery := make(map[string][]int)
	for i, inst := range data {
		byQuery[inst.QueryKey] = append(byQuery[inst.QueryKey], i)
	}
	var pairs []pair
	for key := range groups {
		idxs := byQuery[key]
		var qp []pair
		for _, i := range idxs {
			for _, j := range idxs {
				if data[i].Label > data[j].Label {
					qp = append(qp, pair{hi: i, lo: j})
				}
			}
		}
		if c.MaxPairs > 0 && len(qp) > c.MaxPairs {
			rng.Shuffle(len(qp), func(a, b int) { qp[a], qp[b] = qp[b], qp[a] })
			qp = qp[:c.MaxPairs]
		}
		pairs = append(pairs, qp...)
	}
	if len(pairs) == 0 {
		return fmt.Errorf("%w: no preference pairs (labels all equal within queries?)", ErrBadData)
	}
	for epoch := 0; epoch < c.Epochs; epoch++ {
		rng.Shuffle(len(pairs), func(a, b int) { pairs[a], pairs[b] = pairs[b], pairs[a] })
		for _, p := range pairs {
			hi, lo := data[p.hi], data[p.lo]
			margin := model.Score(hi.Features) - model.Score(lo.Features)
			g := clampFinite(-sigmoid(-margin)) // d/dmargin of log(1+e^{-margin})
			for i := range model.W {
				var xh, xl float64
				if i < len(hi.Features) {
					xh = hi.Features[i]
				}
				if i < len(lo.Features) {
					xl = lo.Features[i]
				}
				model.W[i] -= c.LearningRate * (g*(xh-xl) + c.L2*model.W[i])
			}
		}
	}
	return nil
}
