package ltr

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestAPAt(t *testing.T) {
	// Relevant at ranks 1 and 3: AP = (1/1 + 2/3)/2.
	ap, ok := APAt([]float64{2, 0, 1, 0})
	if !ok {
		t.Fatal("expected ok")
	}
	want := (1.0 + 2.0/3) / 2
	if math.Abs(ap-want) > 1e-12 {
		t.Fatalf("AP = %v, want %v", ap, want)
	}
	if _, ok := APAt([]float64{0, 0}); ok {
		t.Fatal("no relevant docs should report !ok")
	}
	if ap, ok := APAt([]float64{1}); !ok || ap != 1 {
		t.Fatalf("single relevant doc at rank 1: AP = %v", ap)
	}
}

func TestRRAt(t *testing.T) {
	if got := RRAt([]float64{0, 0, 2}); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("RR = %v", got)
	}
	if got := RRAt([]float64{1}); got != 1 {
		t.Fatalf("RR = %v", got)
	}
	if got := RRAt([]float64{0, 0}); got != 0 {
		t.Fatalf("RR = %v", got)
	}
	if got := RRAt(nil); got != 0 {
		t.Fatalf("RR(nil) = %v", got)
	}
}

func TestPrecisionAt(t *testing.T) {
	labels := []float64{2, 0, 1, 0, 0}
	if got := PrecisionAt(labels, 3); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("P@3 = %v", got)
	}
	// k beyond length: computed over what exists.
	if got := PrecisionAt(labels, 10); math.Abs(got-2.0/5) > 1e-12 {
		t.Fatalf("P@10 = %v", got)
	}
	if PrecisionAt(labels, 0) != 0 || PrecisionAt(nil, 5) != 0 {
		t.Fatal("degenerate precision should be 0")
	}
}

func TestEvaluateExtended(t *testing.T) {
	m := &LinearModel{W: []float64{1}}
	data := []Instance{
		{Features: []float64{3}, Label: 2, QueryKey: "q1"},
		{Features: []float64{2}, Label: 0, QueryKey: "q1"},
		{Features: []float64{1}, Label: 1, QueryKey: "q1"},
	}
	got := EvaluateExtended(m, data)
	// Ranking is [2, 0, 1]: AP = (1 + 2/3)/2, RR = 1, P@10 = 2/3.
	wantAP := (1.0 + 2.0/3) / 2
	if math.Abs(got.MAP-wantAP) > 1e-12 {
		t.Fatalf("MAP = %v, want %v", got.MAP, wantAP)
	}
	if got.MRR != 1 {
		t.Fatalf("MRR = %v", got.MRR)
	}
	if math.Abs(got.P10-2.0/3) > 1e-12 {
		t.Fatalf("P10 = %v", got.P10)
	}
	if got.NDCG == 0 || got.ERR == 0 {
		t.Fatal("base metrics missing from extended evaluation")
	}
}

func TestModelSerializationRoundTrip(t *testing.T) {
	m := &LinearModel{W: []float64{0.5, -1.25, 3}, B: 0.75}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.B != m.B || len(got.W) != 3 {
		t.Fatalf("round trip lost state: %+v", got)
	}
	for i := range m.W {
		if got.W[i] != m.W[i] {
			t.Fatalf("weight %d differs", i)
		}
	}
}

func TestReadModelCorrupt(t *testing.T) {
	m := &LinearModel{W: []float64{1, 2}, B: 3}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	cases := [][]byte{
		nil,
		data[:3],
		data[:len(data)-4],
		func() []byte { d := append([]byte{}, data...); d[0] ^= 1; return d }(),
	}
	for i, d := range cases {
		if _, err := ReadModel(bytes.NewReader(d)); !errors.Is(err, ErrCorruptModel) {
			t.Fatalf("case %d: want ErrCorruptModel, got %v", i, err)
		}
	}
}
