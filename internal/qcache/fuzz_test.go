package qcache

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// FuzzCacheKey exercises the key derivation's two privacy-critical
// properties. First, keys must never echo the bytes of what they
// identify: the term id, the generation, and the party string must not
// appear in the key in any common encoding — a key that leaked its term
// would turn the cache into a plaintext query log. Second, keys must
// collide only on identical (party, term, epsilon, k, generation)
// tuples: perturbing any single component must change the key, or
// entries from different plans or ingest generations would alias.
func FuzzCacheKey(f *testing.F) {
	f.Add("siloA", uint64(7), 0.5, 10, uint64(1))
	f.Add("", uint64(0), 0.0, 0, uint64(0))
	f.Add("party-with-a-long-name", uint64(1<<63), 8.25, 1000, uint64(42))
	f.Fuzz(func(t *testing.T, party string, term uint64, epsilon float64, k int, gen uint64) {
		keyer := NewKeyer(0x5eed)
		derive := func(party string, term uint64, eps float64, k int, gen uint64) Key {
			return keyer.Begin(1).String(party).U64(term).F64(eps).Int(k).U64(gen).Key()
		}
		key := derive(party, term, epsilon, k, gen)

		// No echo: neither the term nor the generation appears in the
		// key bytes little- or big-endian, and no 4+ byte run of the
		// party string survives into the key.
		var le, be [8]byte
		for _, v := range []uint64{term, gen} {
			binary.LittleEndian.PutUint64(le[:], v)
			binary.BigEndian.PutUint64(be[:], v)
			if bytes.Contains(key[:], le[:]) && v != 0 {
				t.Fatalf("key echoes %d (LE)", v)
			}
			if bytes.Contains(key[:], be[:]) && v != 0 {
				t.Fatalf("key echoes %d (BE)", v)
			}
		}
		for i := 0; i+4 <= len(party); i++ {
			if bytes.Contains(key[:], []byte(party[i:i+4])) {
				t.Fatalf("key echoes party substring %q", party[i:i+4])
			}
		}

		// Determinism: same tuple, same key — across keyer instances.
		if derive(party, term, epsilon, k, gen) != key {
			t.Fatal("derivation not deterministic")
		}
		if NewKeyer(0x5eed).Begin(1).String(party).U64(term).F64(epsilon).Int(k).U64(gen).Key() != key {
			t.Fatal("derivation depends on keyer instance state")
		}

		// Sensitivity: any single-component perturbation changes the key.
		if derive(party+"x", term, epsilon, k, gen) == key {
			t.Fatal("party not bound into key")
		}
		if derive(party, term+1, epsilon, k, gen) == key {
			t.Fatal("term not bound into key")
		}
		if math.Float64bits(epsilon+1) != math.Float64bits(epsilon) &&
			derive(party, term, epsilon+1, k, gen) == key {
			t.Fatal("epsilon not bound into key")
		}
		if derive(party, term, epsilon, k+1, gen) == key {
			t.Fatal("k not bound into key")
		}
		if derive(party, term, epsilon, k, gen+1) == key {
			t.Fatal("generation not bound into key")
		}

		// Domain separation: the same tuple under another kind or
		// another federation secret derives a different key.
		if keyer.Begin(2).String(party).U64(term).F64(epsilon).Int(k).U64(gen).Key() == key {
			t.Fatal("kind not bound into key")
		}
		if NewKeyer(0x5eee).Begin(1).String(party).U64(term).F64(epsilon).Int(k).U64(gen).Key() == key {
			t.Fatal("federation secret not bound into key")
		}
	})
}
