package qcache

import (
	"testing"

	"csfltr/internal/leakcheck"
)

// TestMain fails the package if a singleflight waiter or stale-serve
// refresh goroutine outlives the test run.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
