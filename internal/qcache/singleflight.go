package qcache

import "sync"

// Group coalesces concurrent calls sharing a key: the first caller
// (the leader) runs fn; every caller that arrives while the leader is
// in flight blocks and receives the leader's result instead of running
// fn itself. For federated search this means N concurrent identical
// queries perform exactly one fan-out and one budget spend.
//
// This is a minimal, dependency-free variant of the well-known
// singleflight pattern, keyed by qcache.Key and counting coalesced
// (non-leader) calls for telemetry.
type Group struct {
	mu        sync.Mutex
	inflight  map[Key]*flightCall
	coalesced int64
}

// flightCall is one in-flight leader execution.
type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// NewGroup creates a Group. If cache is non-nil, the group's coalesced
// counter is wired into the cache's Stats.
func NewGroup(cache *Cache) *Group {
	g := &Group{inflight: make(map[Key]*flightCall)}
	if cache != nil {
		cache.coalesced = g.Coalesced
	}
	return g
}

// Do runs fn under key, coalescing concurrent duplicates. The boolean
// reports whether this caller was the leader (ran fn itself); followers
// receive the leader's exact (val, err) and must treat val as shared —
// clone before mutating.
func (g *Group) Do(key Key, fn func() (any, error)) (any, error, bool) {
	g.mu.Lock()
	if c, ok := g.inflight[key]; ok {
		g.coalesced++
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, false
	}
	c := &flightCall{done: make(chan struct{})}
	g.inflight[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.inflight, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, true
}

// Coalesced returns how many calls were served by another caller's
// execution since the group was created.
func (g *Group) Coalesced() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.coalesced
}
