package qcache

import (
	"encoding/binary"
	"math"

	"csfltr/internal/hashutil"
)

// Key is a 128-bit keyed-hash digest identifying one cacheable answer.
// Keys are the ONLY identity the cache ever stores or exposes: raw
// query terms, party-private state, and hash seeds are folded through
// the federation-keyed hash below and never appear in the key bytes,
// in telemetry, or in any serialized form. Two independent 64-bit lanes
// keep the accidental-collision probability negligible (~2^-64 even
// across billions of entries).
type Key [16]byte

// lane64 returns the first lane as an integer (shard selection).
func (k Key) lane64() uint64 { return binary.LittleEndian.Uint64(k[:8]) }

// Keyer derives cache keys under a secret derived from the federation
// hash seed, so key values are unlinkable to query terms by anyone who
// does not hold the federation secret (the same trust model as the
// sketch hashes themselves: the coordinating server may see keys but
// must not be able to evaluate the mapping).
type Keyer struct {
	// The two lane seeds expand the federation hash seed; like the seed
	// itself they must never be marshalled, logged, or exposed as a
	// metric label.
	//
	//csfltr:private
	k0 uint64
	//csfltr:private
	k1 uint64
}

// NewKeyer derives a keyer from the federation hash seed. Every party
// of a federation derives the same keyer, so cache entries survive
// across queriers while staying opaque to outsiders.
func NewKeyer(seed uint64) *Keyer {
	sm := hashutil.NewSplitMix64(seed ^ 0x71ca2e1db95c00a5)
	return &Keyer{k0: sm.Next(), k1: sm.Next()}
}

// Builder accumulates the components of one cache key. Every absorbed
// component is mixed into both lanes with a strong 64-bit finalizer and
// a per-component position tag, so (a, b) and (b, a) — and ("ab", "c")
// and ("a", "bc") — derive different keys.
type Builder struct {
	h0, h1 uint64
	n      uint64 // components absorbed (position tag)
}

// Begin starts a key derivation for one key kind. kind separates the
// key domains (task-level vs query-level entries can never collide).
func (k *Keyer) Begin(kind uint64) *Builder {
	b := &Builder{h0: k.k0, h1: k.k1}
	b.U64(kind)
	return b
}

// mix64 is the SplitMix64 finalizer — a full-avalanche 64-bit mixer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// U64 absorbs one 64-bit component.
func (b *Builder) U64(v uint64) *Builder {
	b.n++
	b.h0 = mix64(b.h0 ^ mix64(v+b.n*0x9e3779b97f4a7c15))
	b.h1 = mix64(b.h1 + mix64(v^(b.n*0xc2b2ae3d27d4eb4f)))
	return b
}

// F64 absorbs a float64 component by bit pattern.
func (b *Builder) F64(v float64) *Builder { return b.U64(math.Float64bits(v)) }

// Int absorbs an int component.
func (b *Builder) Int(v int) *Builder { return b.U64(uint64(v)) }

// String absorbs a string component: its bytes in 8-byte chunks,
// terminated by the length, so concatenation ambiguities cannot
// collide.
func (b *Builder) String(s string) *Builder {
	var chunk [8]byte
	for i := 0; i < len(s); i += 8 {
		n := copy(chunk[:], s[i:])
		for j := n; j < 8; j++ {
			chunk[j] = 0
		}
		b.U64(binary.LittleEndian.Uint64(chunk[:]))
	}
	return b.U64(uint64(len(s)))
}

// Key finalizes the derivation.
func (b *Builder) Key() Key {
	var out Key
	binary.LittleEndian.PutUint64(out[:8], mix64(b.h0^b.n))
	binary.LittleEndian.PutUint64(out[8:], mix64(b.h1+b.n))
	return out
}
