// Package qcache is the privacy-aware federated answer cache: a
// byte-capacity-bounded, sharded LRU holding per-(party, term) noisy
// RTK estimates and merged per-query search results.
//
// Why caching noisy answers is sound: differential privacy is closed
// under post-processing. Once a (ε)-DP answer has been released,
// replaying the *same released bytes* to the same querier reveals
// nothing further about the underlying corpus, so a cache hit costs
// zero additional privacy budget. The cache therefore turns the
// workload's Zipfian repeat structure (see internal/zipf) into both a
// latency win and a budget win.
//
// Privacy boundary: the cache never stores or derives identity from raw
// query terms. Callers key entries with qcache.Key values produced by a
// Keyer — a keyed hash over the logical query identity (term id, party,
// parameters, ingest generation) under lanes derived from the
// federation hash seed. Key bytes are unlinkable to terms without the
// federation secret, and the privacyboundary analyzer enforces that no
// raw term reaches a key, a log line, or a metric label.
//
// Entries are stored under a *full* key (including the owner's ingest
// generation) and indexed by a *base* key (excluding it). A normal Get
// demands the full key — any ingest bumps the generation and naturally
// invalidates every prior entry. GetStale consults the base index and
// returns the most recent entry regardless of generation, bounded by a
// caller-supplied maximum age; that path backs the degraded-mode
// stale-serve in federation.Search.
package qcache

import (
	"sync"
	"time"
)

// shardCount is a power of two so shard selection is a mask. 16 shards
// keep lock contention negligible at the federation's fan-out widths.
const shardCount = 16

// Stats is a point-in-time counter snapshot across all shards.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	StaleHits int64 `json:"stale_hits"`
	Stores    int64 `json:"stores"`
	Evictions int64 `json:"evictions"`
	Coalesced int64 `json:"coalesced"`
	Bytes     int64 `json:"bytes"`
	Entries   int64 `json:"entries"`
}

// entry is one cached answer. Entries form a doubly-linked LRU list
// per shard, most recent at the front.
type entry struct {
	full     Key
	base     Key
	val      any
	size     int64
	storedAt time.Time

	prev, next *entry
}

// shard is one lock domain: a full-key map, a base-key recency index
// (for stale lookups), and the LRU list.
type shard struct {
	mu      sync.Mutex
	byFull  map[Key]*entry
	byBase  map[Key]*entry // most recently stored entry per base key
	head    *entry         // most recently used
	tail    *entry         // least recently used
	bytes   int64
	hits    int64
	misses  int64
	stale   int64
	stores  int64
	evicted int64
}

// Cache is a sharded byte-capacity-bounded LRU. The zero value is not
// usable; construct with New. All methods are safe for concurrent use.
type Cache struct {
	shards   [shardCount]shard
	capacity int64 // bytes, per cache (split evenly across shards)

	coalesced func() int64 // singleflight group's counter, set by NewGroup

	// now is the clock, injectable for staleness tests.
	now func() time.Time
}

// New creates a cache bounded to capacityBytes across all shards.
// capacityBytes must be positive.
func New(capacityBytes int64) *Cache {
	if capacityBytes <= 0 {
		panic("qcache: non-positive capacity")
	}
	c := &Cache{capacity: capacityBytes, now: time.Now}
	for i := range c.shards {
		c.shards[i].byFull = make(map[Key]*entry)
		c.shards[i].byBase = make(map[Key]*entry)
	}
	return c
}

// SetClock replaces the cache's time source (tests only).
func (c *Cache) SetClock(now func() time.Time) { c.now = now }

// shardFor selects the shard by *base* key, so an entry and its stale
// index row always live under the same lock.
func (c *Cache) shardFor(base Key) *shard {
	return &c.shards[base.lane64()&(shardCount-1)]
}

// Get returns the value stored under the full key, or (nil, false).
// A hit promotes the entry to most-recently-used.
func (c *Cache) Get(full, base Key) (any, bool) {
	s := c.shardFor(base)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byFull[full]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.moveFront(e)
	return e.val, true
}

// GetStale returns the most recently stored value under the base key —
// regardless of generation — provided it is no older than maxAge.
// The returned age is how long ago the entry was stored. Stale reads do
// not promote the entry (they must not outcompete fresh traffic for
// residency).
func (c *Cache) GetStale(base Key, maxAge time.Duration) (any, time.Duration, bool) {
	s := c.shardFor(base)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byBase[base]
	if !ok {
		return nil, 0, false
	}
	age := c.now().Sub(e.storedAt)
	if age < 0 {
		age = 0
	}
	if age > maxAge {
		return nil, 0, false
	}
	s.stale++
	return e.val, age, true
}

// Put stores val under (full, base). size is the caller's estimate of
// the entry's resident bytes and must be positive; entries larger than
// a shard's capacity are rejected outright (returning false) rather
// than flushing the whole shard. Storing an existing full key refreshes
// its value, size and timestamp.
func (c *Cache) Put(full, base Key, size int64, val any) bool {
	if size <= 0 {
		panic("qcache: non-positive entry size")
	}
	perShard := c.capacity / shardCount
	if perShard < 1 {
		perShard = 1
	}
	if size > perShard {
		return false
	}
	s := c.shardFor(base)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.byFull[full]; ok {
		s.bytes += size - e.size
		e.val, e.size, e.storedAt = val, size, c.now()
		s.byBase[base] = e
		s.moveFront(e)
	} else {
		e = &entry{full: full, base: base, val: val, size: size, storedAt: c.now()}
		s.byFull[full] = e
		s.byBase[base] = e
		s.bytes += size
		s.pushFront(e)
		s.stores++
	}
	for s.bytes > perShard && s.tail != nil {
		s.evict(s.tail)
	}
	return true
}

// Len returns the live entry count.
func (c *Cache) Len() int64 {
	var n int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += int64(len(s.byFull))
		s.mu.Unlock()
	}
	return n
}

// Bytes returns the resident byte total.
func (c *Cache) Bytes() int64 {
	var n int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.bytes
		s.mu.Unlock()
	}
	return n
}

// Stats aggregates counters across shards.
func (c *Cache) Stats() Stats {
	var st Stats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.StaleHits += s.stale
		st.Stores += s.stores
		st.Evictions += s.evicted
		st.Bytes += s.bytes
		st.Entries += int64(len(s.byFull))
		s.mu.Unlock()
	}
	if c.coalesced != nil {
		st.Coalesced = c.coalesced()
	}
	return st
}

// pushFront links e at the head. Caller holds the shard lock.
func (s *shard) pushFront(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// unlink removes e from the list. Caller holds the shard lock.
func (s *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// moveFront promotes e to most-recently-used. Caller holds the lock.
func (s *shard) moveFront(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// evict removes e entirely. Caller holds the shard lock.
func (s *shard) evict(e *entry) {
	s.unlink(e)
	delete(s.byFull, e.full)
	if s.byBase[e.base] == e {
		delete(s.byBase, e.base)
	}
	s.bytes -= e.size
	s.evicted++
}
