package qcache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testKeyer returns a fixed-seed keyer for deterministic tests.
func testKeyer() *Keyer { return NewKeyer(0xfeedc0ffee) }

// taskKey builds a representative task-level key.
func taskKey(k *Keyer, party string, term, gen uint64) (full, base Key) {
	base = k.Begin(1).String(party).U64(term).F64(0.5).Int(10).Key()
	full = k.Begin(1).String(party).U64(term).F64(0.5).Int(10).U64(gen).Key()
	return full, base
}

func TestGetPutRoundTrip(t *testing.T) {
	c := New(1 << 20)
	k := testKeyer()
	full, base := taskKey(k, "A", 7, 1)
	if _, ok := c.Get(full, base); ok {
		t.Fatal("hit on empty cache")
	}
	if !c.Put(full, base, 100, "answer") {
		t.Fatal("Put rejected")
	}
	v, ok := c.Get(full, base)
	if !ok || v.(string) != "answer" {
		t.Fatalf("Get = %v, %v; want answer, true", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Stores != 1 || st.Entries != 1 || st.Bytes != 100 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGenerationChangeForcesMiss(t *testing.T) {
	c := New(1 << 20)
	k := testKeyer()
	full1, base := taskKey(k, "A", 7, 1)
	c.Put(full1, base, 64, "gen1")
	full2, base2 := taskKey(k, "A", 7, 2)
	if base2 != base {
		t.Fatal("base key must not depend on generation")
	}
	if full2 == full1 {
		t.Fatal("full key must depend on generation")
	}
	if _, ok := c.Get(full2, base); ok {
		t.Fatal("hit across generations: ingest must invalidate")
	}
	// But the stale path still sees the old answer via the base key.
	if v, _, ok := c.GetStale(base, time.Hour); !ok || v.(string) != "gen1" {
		t.Fatalf("GetStale = %v, %v; want gen1, true", v, ok)
	}
}

func TestGetStaleRespectsMaxAge(t *testing.T) {
	c := New(1 << 20)
	now := time.Unix(1000, 0)
	c.SetClock(func() time.Time { return now })
	k := testKeyer()
	full, base := taskKey(k, "A", 7, 1)
	c.Put(full, base, 64, "v")

	now = now.Add(30 * time.Second)
	if _, age, ok := c.GetStale(base, time.Minute); !ok || age != 30*time.Second {
		t.Fatalf("GetStale within bound: ok=%v age=%v", ok, age)
	}
	now = now.Add(2 * time.Minute)
	if _, _, ok := c.GetStale(base, time.Minute); ok {
		t.Fatal("GetStale returned an entry older than maxAge")
	}
}

func TestByteBoundEviction(t *testing.T) {
	// Capacity of 16 shards × 64 bytes each. Fill one logical stream of
	// entries; residency must never exceed capacity and the oldest
	// entries must go first within a shard.
	c := New(16 * 64)
	k := testKeyer()
	for i := uint64(0); i < 200; i++ {
		full, base := taskKey(k, "A", i, 1)
		c.Put(full, base, 48, i)
	}
	if got := c.Bytes(); got > 16*64 {
		t.Fatalf("resident bytes %d exceed capacity", got)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("expected evictions")
	}
	if st.Entries*48 != st.Bytes {
		t.Fatalf("entries/bytes inconsistent: %+v", st)
	}
}

func TestLRUOrderWithinShard(t *testing.T) {
	// A 1-shard-sized workload: use one base key's shard by brute force.
	c := New(16 * 100) // 100 bytes per shard
	k := testKeyer()
	// Find three distinct terms landing in the same shard.
	var terms []uint64
	var shardIdx uint64
	for i := uint64(0); len(terms) < 3; i++ {
		_, base := taskKey(k, "A", i, 1)
		idx := base.lane64() & (shardCount - 1)
		if len(terms) == 0 {
			shardIdx = idx
		}
		if idx == shardIdx {
			terms = append(terms, i)
		}
	}
	keys := make([][2]Key, 3)
	for i, term := range terms {
		full, base := taskKey(k, "A", term, 1)
		keys[i] = [2]Key{full, base}
		c.Put(full, base, 40, term)
	}
	// Shard holds 100 bytes; the third Put (120 resident) evicted the
	// least-recently-used first entry.
	if _, ok := c.Get(keys[0][0], keys[0][1]); ok {
		t.Fatal("oldest entry survived past capacity")
	}
	if _, ok := c.Get(keys[2][0], keys[2][1]); !ok {
		t.Fatal("newest entry evicted")
	}
	// Touch entry 1, insert a fourth: entry 1 must now survive over 2.
	if _, ok := c.Get(keys[1][0], keys[1][1]); !ok {
		t.Fatal("entry 1 missing")
	}
	var fourth uint64
	for i := terms[2] + 1; ; i++ {
		_, base := taskKey(k, "A", i, 1)
		if base.lane64()&(shardCount-1) == shardIdx {
			fourth = i
			break
		}
	}
	f4, b4 := taskKey(k, "A", fourth, 1)
	c.Put(f4, b4, 40, fourth)
	if _, ok := c.Get(keys[1][0], keys[1][1]); !ok {
		t.Fatal("recently-used entry evicted before older one")
	}
	if _, ok := c.Get(keys[2][0], keys[2][1]); ok {
		t.Fatal("LRU order not respected after Get promotion")
	}
}

func TestPutRejectsOversizedEntry(t *testing.T) {
	c := New(16 * 64)
	k := testKeyer()
	full, base := taskKey(k, "A", 1, 1)
	if c.Put(full, base, 65, "big") {
		t.Fatal("oversized entry accepted")
	}
	if c.Len() != 0 {
		t.Fatal("oversized entry resident")
	}
}

func TestPutRefreshExistingKey(t *testing.T) {
	c := New(1 << 20)
	now := time.Unix(1000, 0)
	c.SetClock(func() time.Time { return now })
	k := testKeyer()
	full, base := taskKey(k, "A", 1, 1)
	c.Put(full, base, 50, "old")
	now = now.Add(time.Minute)
	c.Put(full, base, 80, "new")
	v, ok := c.Get(full, base)
	if !ok || v.(string) != "new" {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != 80 || st.Stores != 1 {
		t.Fatalf("refresh stats = %+v", st)
	}
	if _, age, ok := c.GetStale(base, time.Hour); !ok || age != 0 {
		t.Fatalf("refresh must reset storedAt: age=%v ok=%v", age, ok)
	}
}

func TestSingleflightCoalesces(t *testing.T) {
	c := New(1 << 20)
	g := NewGroup(c)
	k := testKeyer()
	full, _ := taskKey(k, "A", 1, 1)

	const n = 16
	var executions atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]any, n)
	leaders := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, leader := g.Do(full, func() (any, error) {
				executions.Add(1)
				<-release
				return "shared", nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i] = v
			leaders[i] = leader
		}(i)
	}
	// Wait until the leader is inside fn and every follower is queued,
	// then release.
	deadline := time.After(5 * time.Second)
	for {
		g.mu.Lock()
		var waiting int64
		waiting = g.coalesced
		g.mu.Unlock()
		if executions.Load() == 1 && waiting == n-1 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("coalescing never converged: exec=%d coalesced=%d",
				executions.Load(), g.Coalesced())
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	wg.Wait()

	if got := executions.Load(); got != 1 {
		t.Fatalf("fn executed %d times; want 1", got)
	}
	var leaderCount int
	for i := 0; i < n; i++ {
		if results[i].(string) != "shared" {
			t.Fatalf("result[%d] = %v", i, results[i])
		}
		if leaders[i] {
			leaderCount++
		}
	}
	if leaderCount != 1 {
		t.Fatalf("leader count = %d; want 1", leaderCount)
	}
	if c.Stats().Coalesced != n-1 {
		t.Fatalf("Stats.Coalesced = %d; want %d", c.Stats().Coalesced, n-1)
	}
}

func TestSingleflightSequentialNotCoalesced(t *testing.T) {
	g := NewGroup(nil)
	k := testKeyer()
	full, _ := taskKey(k, "A", 1, 1)
	for i := 0; i < 3; i++ {
		_, _, leader := g.Do(full, func() (any, error) { return i, nil })
		if !leader {
			t.Fatalf("sequential call %d coalesced", i)
		}
	}
	if g.Coalesced() != 0 {
		t.Fatalf("Coalesced = %d; want 0", g.Coalesced())
	}
}

func TestCacheConcurrency(t *testing.T) {
	c := New(1 << 16)
	k := testKeyer()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := uint64(0); i < 500; i++ {
				term := i % 37
				full, base := taskKey(k, fmt.Sprintf("P%d", w%3), term, 1)
				if i%3 == 0 {
					c.Put(full, base, 64, term)
				} else if i%3 == 1 {
					c.Get(full, base)
				} else {
					c.GetStale(base, time.Hour)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Bytes() > 1<<16 {
		t.Fatalf("capacity exceeded: %d", c.Bytes())
	}
}

func TestKeyDeterminismAndSeparation(t *testing.T) {
	k1 := NewKeyer(42)
	k2 := NewKeyer(42)
	k3 := NewKeyer(43)
	a := k1.Begin(1).String("A").U64(7).Key()
	if b := k2.Begin(1).String("A").U64(7).Key(); a != b {
		t.Fatal("same seed, same components: keys differ")
	}
	if b := k3.Begin(1).String("A").U64(7).Key(); a == b {
		t.Fatal("different seeds collide")
	}
	if b := k1.Begin(2).String("A").U64(7).Key(); a == b {
		t.Fatal("different kinds collide")
	}
	if b := k1.Begin(1).String("A").U64(8).Key(); a == b {
		t.Fatal("different terms collide")
	}
	// Concatenation ambiguity: ("ab","c") vs ("a","bc").
	if k1.Begin(1).String("ab").String("c").Key() == k1.Begin(1).String("a").String("bc").Key() {
		t.Fatal("string boundary ambiguity collides")
	}
}
