// Package index is the exact-retrieval substrate of the reproduction: an
// in-memory inverted index with BM25 scoring. It plays two roles:
//
//   - ground truth: the synthetic corpus ranks every query against the
//     global cross-party collection with exact BM25 to derive the
//     relevance labels (package corpus), mirroring the paper's use of the
//     official MS MARCO top-100 ranking;
//   - baseline: it is what a party could compute *without* privacy
//     constraints, the reference point for every sketch-based estimate.
//
// The index is append-only and safe for concurrent reads after
// construction.
package index

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"csfltr/internal/textkit"
)

// Errors returned by this package.
var (
	ErrDuplicateDoc = errors.New("index: duplicate document id")
	ErrUnknownDoc   = errors.New("index: unknown document")
)

// Posting is one inverted-list entry: a document and the term's count in
// it. Lists are kept sorted by Doc.
type Posting struct {
	Doc   int32
	Count int32
}

// Hit is one search result.
type Hit struct {
	Doc   int
	Score float64
}

// BM25Params are the scoring parameters.
type BM25Params struct {
	K1 float64
	B  float64
}

// DefaultBM25 returns the conventional parameterization.
func DefaultBM25() BM25Params { return BM25Params{K1: 1.2, B: 0.75} }

// Index is an inverted index over term-count vectors.
type Index struct {
	postings map[textkit.TermID][]Posting
	docLen   map[int]int
	totalLen int64
	sealed   bool
}

// New returns an empty index.
func New() *Index {
	return &Index{
		postings: make(map[textkit.TermID][]Posting),
		docLen:   make(map[int]int),
	}
}

// Add indexes one document's term counts under docID. Documents may be
// added in any id order; lists are sorted on first search.
func (ix *Index) Add(docID int, tv textkit.TermVector) error {
	if _, dup := ix.docLen[docID]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicateDoc, docID)
	}
	length := 0
	for term, c := range tv {
		ix.postings[term] = append(ix.postings[term], Posting{Doc: int32(docID), Count: int32(c)})
		length += c
	}
	ix.docLen[docID] = length
	ix.totalLen += int64(length)
	ix.sealed = false
	return nil
}

// seal sorts every posting list by document id; called lazily before
// reads that rely on order.
func (ix *Index) seal() {
	if ix.sealed {
		return
	}
	for term := range ix.postings {
		list := ix.postings[term]
		sort.Slice(list, func(i, j int) bool { return list[i].Doc < list[j].Doc })
	}
	ix.sealed = true
}

// NumDocs returns the number of indexed documents.
func (ix *Index) NumDocs() int { return len(ix.docLen) }

// AvgDocLen returns the mean indexed document length.
func (ix *Index) AvgDocLen() float64 {
	if len(ix.docLen) == 0 {
		return 0
	}
	return float64(ix.totalLen) / float64(len(ix.docLen))
}

// DocLen returns the length of one document.
func (ix *Index) DocLen(docID int) (int, error) {
	l, ok := ix.docLen[docID]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownDoc, docID)
	}
	return l, nil
}

// DocFreq returns the number of documents containing term.
func (ix *Index) DocFreq(term textkit.TermID) int { return len(ix.postings[term]) }

// TermCount returns the exact count of term in docID (0 if absent).
func (ix *Index) TermCount(term textkit.TermID, docID int) int {
	ix.seal()
	list := ix.postings[term]
	i := sort.Search(len(list), func(i int) bool { return list[i].Doc >= int32(docID) })
	if i < len(list) && list[i].Doc == int32(docID) {
		return int(list[i].Count)
	}
	return 0
}

// idf is the Robertson-Sparck-Jones IDF with +1 flooring.
func (ix *Index) idf(term textkit.TermID) float64 {
	df := float64(ix.DocFreq(term))
	n := float64(ix.NumDocs())
	v := (n - df + 0.5) / (df + 0.5)
	if v < 0 {
		v = 0
	}
	return math.Log1p(v)
}

// SearchBM25 ranks all documents matching any query term by BM25 and
// returns the top k (k <= 0 returns every match). Ties break by
// ascending document id for determinism.
func (ix *Index) SearchBM25(terms []textkit.TermID, k int, p BM25Params) []Hit {
	scores := make(map[int32]float64)
	avg := ix.AvgDocLen()
	seen := make(map[textkit.TermID]struct{}, len(terms))
	for _, term := range terms {
		if _, dup := seen[term]; dup {
			continue
		}
		seen[term] = struct{}{}
		list := ix.postings[term]
		if len(list) == 0 {
			continue
		}
		idf := ix.idf(term)
		for _, pt := range list {
			tf := float64(pt.Count)
			dl := float64(ix.docLen[int(pt.Doc)])
			denom := tf + p.K1*(1-p.B+p.B*dl/avg)
			scores[pt.Doc] += idf * tf * (p.K1 + 1) / denom
		}
	}
	hits := make([]Hit, 0, len(scores))
	for doc, s := range scores {
		hits = append(hits, Hit{Doc: int(doc), Score: s})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Doc < hits[j].Doc
	})
	if k > 0 && len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// ReverseTopK returns the k documents with the largest exact counts of
// term — the ground truth for the paper's reverse top-K document query
// (Definition 3).
func (ix *Index) ReverseTopK(term textkit.TermID, k int) []Hit {
	list := ix.postings[term]
	hits := make([]Hit, 0, len(list))
	for _, pt := range list {
		hits = append(hits, Hit{Doc: int(pt.Doc), Score: float64(pt.Count)})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Doc < hits[j].Doc
	})
	if k > 0 && len(hits) > k {
		hits = hits[:k]
	}
	return hits
}
