package index

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"csfltr/internal/textkit"
)

func tv(pairs ...int) textkit.TermVector {
	out := textkit.TermVector{}
	for i := 0; i+1 < len(pairs); i += 2 {
		out[textkit.TermID(pairs[i])] = pairs[i+1]
	}
	return out
}

func TestAddAndStats(t *testing.T) {
	ix := New()
	if err := ix.Add(0, tv(1, 2, 2, 1)); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(1, tv(2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(0, tv(5, 1)); !errors.Is(err, ErrDuplicateDoc) {
		t.Fatal("duplicate doc should error")
	}
	if ix.NumDocs() != 2 {
		t.Fatalf("NumDocs = %d", ix.NumDocs())
	}
	if got := ix.AvgDocLen(); got != 3 {
		t.Fatalf("AvgDocLen = %v, want 3", got)
	}
	if l, err := ix.DocLen(0); err != nil || l != 3 {
		t.Fatalf("DocLen(0) = %d, %v", l, err)
	}
	if _, err := ix.DocLen(99); !errors.Is(err, ErrUnknownDoc) {
		t.Fatal("unknown doc should error")
	}
	if ix.DocFreq(2) != 2 || ix.DocFreq(1) != 1 || ix.DocFreq(9) != 0 {
		t.Fatal("DocFreq wrong")
	}
}

func TestTermCount(t *testing.T) {
	ix := New()
	// Out-of-order ids exercise lazy sealing.
	for _, id := range []int{5, 1, 3, 2, 4} {
		if err := ix.Add(id, tv(7, id)); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []int{1, 2, 3, 4, 5} {
		if got := ix.TermCount(7, id); got != id {
			t.Fatalf("TermCount(7,%d) = %d", id, got)
		}
	}
	if ix.TermCount(7, 99) != 0 || ix.TermCount(8, 1) != 0 {
		t.Fatal("absent lookups should be 0")
	}
}

func TestSearchBM25Ordering(t *testing.T) {
	ix := New()
	// Doc 0 matches both terms, doc 1 one term heavily, doc 2 neither.
	if err := ix.Add(0, tv(1, 3, 2, 2, 9, 5)); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(1, tv(1, 5, 8, 5)); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(2, tv(8, 10)); err != nil {
		t.Fatal(err)
	}
	hits := ix.SearchBM25([]textkit.TermID{1, 2}, 0, DefaultBM25())
	if len(hits) != 2 {
		t.Fatalf("hits = %v", hits)
	}
	if hits[0].Doc != 0 {
		t.Fatalf("doc 0 matches both terms and should rank first: %v", hits)
	}
	// Truncation.
	if got := ix.SearchBM25([]textkit.TermID{1, 2}, 1, DefaultBM25()); len(got) != 1 {
		t.Fatalf("k=1 returned %d hits", len(got))
	}
	// No matches.
	if got := ix.SearchBM25([]textkit.TermID{42}, 5, DefaultBM25()); len(got) != 0 {
		t.Fatalf("no-match query returned %v", got)
	}
	// Duplicate query terms must not double-score.
	once := ix.SearchBM25([]textkit.TermID{1}, 0, DefaultBM25())
	twice := ix.SearchBM25([]textkit.TermID{1, 1}, 0, DefaultBM25())
	for i := range once {
		if math.Abs(once[i].Score-twice[i].Score) > 1e-12 {
			t.Fatal("duplicate query terms double-scored")
		}
	}
}

func TestReverseTopK(t *testing.T) {
	ix := New()
	for id := 0; id < 10; id++ {
		if err := ix.Add(id, tv(1, 10-id, 2, 1)); err != nil {
			t.Fatal(err)
		}
	}
	hits := ix.ReverseTopK(1, 3)
	if len(hits) != 3 || hits[0].Doc != 0 || hits[1].Doc != 1 || hits[2].Doc != 2 {
		t.Fatalf("ReverseTopK = %v", hits)
	}
	if hits[0].Score != 10 {
		t.Fatalf("top score = %v", hits[0].Score)
	}
	if got := ix.ReverseTopK(99, 3); len(got) != 0 {
		t.Fatal("absent term should return nothing")
	}
	if got := ix.ReverseTopK(1, 0); len(got) != 10 {
		t.Fatalf("k<=0 should return all matches, got %d", len(got))
	}
}

func TestReverseTopKTieBreak(t *testing.T) {
	ix := New()
	for _, id := range []int{3, 1, 2} {
		if err := ix.Add(id, tv(7, 5)); err != nil {
			t.Fatal(err)
		}
	}
	hits := ix.ReverseTopK(7, 3)
	if hits[0].Doc != 1 || hits[1].Doc != 2 || hits[2].Doc != 3 {
		t.Fatalf("ties must break by ascending id: %v", hits)
	}
}

// TestTermCountMatchesInput (property): TermCount returns exactly what
// was added, for random documents.
func TestTermCountMatchesInput(t *testing.T) {
	check := func(raw []uint8) bool {
		ix := New()
		docs := make([]textkit.TermVector, 5)
		for i := range docs {
			docs[i] = textkit.TermVector{}
		}
		for i, r := range raw {
			docs[i%5][textkit.TermID(r%32)]++
		}
		for i, d := range docs {
			if len(d) == 0 {
				d[0] = 1 // index requires some content? (empty is fine, but keep counts visible)
			}
			if err := ix.Add(i, d); err != nil {
				return false
			}
		}
		for i, d := range docs {
			for term, c := range d {
				if ix.TermCount(term, i) != c {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSearchBM25(b *testing.B) {
	ix := New()
	rng := rand.New(rand.NewSource(1))
	for id := 0; id < 5000; id++ {
		d := textkit.TermVector{}
		for j := 0; j < 100; j++ {
			d[textkit.TermID(rng.Intn(5000))]++
		}
		if err := ix.Add(id, d); err != nil {
			b.Fatal(err)
		}
	}
	terms := []textkit.TermID{10, 20, 30}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.SearchBM25(terms, 100, DefaultBM25())
	}
}
