package resilience

import (
	"sync"
	"time"
)

// State is a circuit breaker's position. The numeric values are stable
// and exported via the telemetry breaker-state gauge, so they are part
// of the metrics contract: 0 closed, 1 half-open, 2 open.
type State int

const (
	Closed   State = 0
	HalfOpen State = 1
	Open     State = 2
)

// String implements fmt.Stringer with bounded, metric-safe values.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case HalfOpen:
		return "half-open"
	case Open:
		return "open"
	}
	return "invalid"
}

// Breaker is a per-target circuit breaker. Closed passes calls through
// and counts consecutive failures; FailureThreshold of them open it.
// Open refuses calls until OpenTimeout has elapsed, then a probe moves
// it to half-open. Half-open passes calls; HalfOpenSuccesses in a row
// close it again, any failure reopens it. Safe for concurrent use.
type Breaker struct {
	mu        sync.Mutex
	policy    Policy
	state     State
	failures  int       // consecutive failures while closed
	successes int       // consecutive successes while half-open
	openedAt  time.Time // when the breaker last opened
	now       func() time.Time
	onChange  func(State)
}

// NewBreaker creates a closed breaker governed by p's
// FailureThreshold / OpenTimeout / HalfOpenSuccesses.
func NewBreaker(p Policy) *Breaker {
	if p.FailureThreshold < 1 {
		p.FailureThreshold = 1
	}
	if p.HalfOpenSuccesses < 1 {
		p.HalfOpenSuccesses = 1
	}
	return &Breaker{policy: p, now: time.Now}
}

// WithClock swaps the breaker's clock (tests) and returns it.
func (b *Breaker) WithClock(now func() time.Time) *Breaker {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now = now
	return b
}

// OnChange installs a hook called (outside any locked section user code
// can observe, but under the breaker's own mutex) on every state
// transition — e.g. to publish the state gauge.
func (b *Breaker) OnChange(fn func(State)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.onChange = fn
}

// State returns the current state without side effects.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow reports whether a call may proceed now. An open breaker whose
// OpenTimeout has elapsed transitions to half-open and admits the call
// as a probe.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed, HalfOpen:
		return true
	default: // Open
		if b.policy.OpenTimeout > 0 && b.now().Sub(b.openedAt) >= b.policy.OpenTimeout {
			b.transition(HalfOpen)
			return true
		}
		return false
	}
}

// Record feeds one call outcome into the state machine. Outcomes
// recorded while the breaker is open (late results from calls admitted
// earlier) are ignored.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		if ok {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.policy.FailureThreshold {
			b.transition(Open)
		}
	case HalfOpen:
		if !ok {
			b.transition(Open)
			return
		}
		b.successes++
		if b.successes >= b.policy.HalfOpenSuccesses {
			b.transition(Closed)
		}
	case Open:
		// Late record; the open timer alone decides when to probe.
	}
}

// transition moves to s and resets the relevant counters; callers hold
// b.mu.
func (b *Breaker) transition(s State) {
	if b.state == s {
		return
	}
	b.state = s
	b.failures = 0
	b.successes = 0
	if s == Open {
		b.openedAt = b.now()
	}
	if b.onChange != nil {
		b.onChange(s)
	}
}
