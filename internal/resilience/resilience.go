// Package resilience provides the client-side fault-tolerance
// primitives the federation uses when silos are slow or flaky: retry
// with capped exponential backoff and deterministic jitter, per-call
// deadlines, and per-party circuit breakers (breaker.go). Everything
// that affects control flow is deterministic given a seed so that
// degraded-mode federated search stays reproducible under test.
package resilience

import (
	"errors"
	"time"
)

// ErrDeadlineExceeded marks a call abandoned because one attempt
// outlived Policy.CallTimeout.
var ErrDeadlineExceeded = errors.New("resilience: call deadline exceeded")

// ErrBreakerOpen marks a call refused without being sent because the
// target's circuit breaker is open.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// Policy bundles the retry, deadline, and breaker knobs for calls to
// one class of target (here: one federated party).
type Policy struct {
	// MaxAttempts is the total number of tries per call (1 = no retry).
	MaxAttempts int
	// BaseBackoff is the pause before the first retry; each further
	// retry doubles it, capped at MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JitterFrac in [0, 1] scales a deterministic jitter subtracted
	// from each backoff so retries don't synchronise: the realized
	// pause is backoff * (1 - JitterFrac*u) for a seeded u in [0, 1).
	JitterFrac float64
	// CallTimeout bounds one attempt; 0 means no deadline.
	CallTimeout time.Duration
	// Retryable classifies errors; nil retries everything. Permanent
	// errors (bad query, budget exhausted, ...) must return false so
	// retries don't burn time on calls that can never succeed.
	Retryable func(error) bool

	// FailureThreshold consecutive failures open a breaker.
	FailureThreshold int
	// OpenTimeout is how long an open breaker waits before letting a
	// half-open probe through.
	OpenTimeout time.Duration
	// HalfOpenSuccesses probes must succeed to close a half-open
	// breaker again.
	HalfOpenSuccesses int

	// sleep is swappable for tests.
	sleep func(time.Duration)
}

// DefaultPolicy returns the federation's default resilience posture:
// three attempts with millisecond-scale capped backoff, a generous
// per-attempt deadline, and a breaker that trips after three
// consecutive failures.
func DefaultPolicy() Policy {
	return Policy{
		MaxAttempts:       3,
		BaseBackoff:       2 * time.Millisecond,
		MaxBackoff:        250 * time.Millisecond,
		JitterFrac:        0.5,
		CallTimeout:       10 * time.Second,
		FailureThreshold:  3,
		OpenTimeout:       30 * time.Second,
		HalfOpenSuccesses: 2,
	}
}

// WithSleep returns a copy of p that pauses via fn instead of
// time.Sleep (tests).
func (p Policy) WithSleep(fn func(time.Duration)) Policy {
	p.sleep = fn
	return p
}

// attempts normalizes MaxAttempts.
func (p Policy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// retryable applies the classifier (nil = retry everything).
func (p Policy) retryable(err error) bool {
	if p.Retryable == nil {
		return true
	}
	return p.Retryable(err)
}

// Backoff returns the deterministic pause before retry attempt
// `attempt` (1-based: the pause after the attempt-th failure) for a
// call identified by seed.
func (p Policy) Backoff(attempt int, seed uint64) time.Duration {
	if p.BaseBackoff <= 0 || attempt < 1 {
		return 0
	}
	d := p.BaseBackoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			d = p.MaxBackoff
			break
		}
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if p.JitterFrac > 0 {
		u := unitFloat(splitmix64(seed ^ uint64(attempt)*0x9e3779b97f4a7c15))
		d = time.Duration(float64(d) * (1 - p.JitterFrac*u))
	}
	return d
}

// result carries one attempt's outcome across the deadline boundary.
type result[T any] struct {
	v   T
	err error
}

// Call runs f under p: up to MaxAttempts tries, each bounded by
// CallTimeout, with deterministic jittered backoff (from seed) between
// tries. It returns the value, the number of attempts actually made,
// and the final error. A timed-out attempt's goroutine is abandoned —
// its eventual result goes to a buffered channel nobody reads, so a
// late f can never race with the caller's use of the returned value.
func Call[T any](p Policy, seed uint64, f func() (T, error)) (T, int, error) {
	var zero T
	sleep := p.sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	var err error
	for attempt := 1; ; attempt++ {
		var v T
		v, err = callOnce(p.CallTimeout, f)
		if err == nil {
			return v, attempt, nil
		}
		if attempt >= p.attempts() || !p.retryable(err) {
			return zero, attempt, err
		}
		if d := p.Backoff(attempt, seed); d > 0 {
			sleep(d)
		}
	}
}

// callOnce runs one attempt with an optional deadline.
func callOnce[T any](timeout time.Duration, f func() (T, error)) (T, error) {
	if timeout <= 0 {
		return f()
	}
	ch := make(chan result[T], 1)
	go func() {
		v, err := f()
		ch <- result[T]{v: v, err: err}
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.v, r.err
	case <-timer.C:
		var zero T
		return zero, ErrDeadlineExceeded
	}
}

// splitmix64 is the SplitMix64 finalizer (same PRF family as package
// chaos, duplicated to keep both packages dependency-free leaves).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unitFloat maps a 64-bit value to [0, 1).
func unitFloat(x uint64) float64 { return float64(x>>11) / float64(1<<53) }
