package resilience

import (
	"testing"

	"csfltr/internal/leakcheck"
)

// TestMain fails the package if an abandoned attempt goroutine (a
// timed-out Call writing into its buffered result channel) or a chaos
// injector outlives the test run past the drain grace period.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
