package resilience

import (
	"errors"
	"testing"
	"time"
)

var errBoom = errors.New("boom")

// TestCallSucceedsFirstTry: a healthy call makes exactly one attempt
// and returns its value untouched.
func TestCallSucceedsFirstTry(t *testing.T) {
	p := DefaultPolicy().WithSleep(func(time.Duration) { t.Fatal("slept with no retry") })
	v, attempts, err := Call(p, 1, func() (int, error) { return 42, nil })
	if err != nil || v != 42 || attempts != 1 {
		t.Fatalf("got (%d, %d, %v), want (42, 1, nil)", v, attempts, err)
	}
}

// TestCallRetriesThenSucceeds: transient failures are retried with
// backoff until success, within MaxAttempts.
func TestCallRetriesThenSucceeds(t *testing.T) {
	var slept []time.Duration
	p := DefaultPolicy().WithSleep(func(d time.Duration) { slept = append(slept, d) })
	p.MaxAttempts = 5
	calls := 0
	v, attempts, err := Call(p, 1, func() (string, error) {
		calls++
		if calls < 3 {
			return "", errBoom
		}
		return "ok", nil
	})
	if err != nil || v != "ok" || attempts != 3 {
		t.Fatalf("got (%q, %d, %v), want (ok, 3, nil)", v, attempts, err)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
}

// TestCallExhaustsAttempts: a persistent failure surfaces the last
// error after exactly MaxAttempts tries.
func TestCallExhaustsAttempts(t *testing.T) {
	p := DefaultPolicy().WithSleep(func(time.Duration) {})
	p.MaxAttempts = 3
	calls := 0
	_, attempts, err := Call(p, 1, func() (int, error) { calls++; return 0, errBoom })
	if !errors.Is(err, errBoom) || attempts != 3 || calls != 3 {
		t.Fatalf("got (attempts=%d, calls=%d, err=%v), want 3 attempts of errBoom", attempts, calls, err)
	}
}

// TestCallPermanentErrorNotRetried: the Retryable classifier short-
// circuits retries for errors that can never succeed.
func TestCallPermanentErrorNotRetried(t *testing.T) {
	permanent := errors.New("bad request")
	p := DefaultPolicy().WithSleep(func(time.Duration) { t.Fatal("slept on a permanent error") })
	p.MaxAttempts = 5
	p.Retryable = func(err error) bool { return !errors.Is(err, permanent) }
	calls := 0
	_, attempts, err := Call(p, 1, func() (int, error) { calls++; return 0, permanent })
	if !errors.Is(err, permanent) || attempts != 1 || calls != 1 {
		t.Fatalf("got (attempts=%d, calls=%d, err=%v), want 1 attempt", attempts, calls, err)
	}
}

// TestCallDeadline: an attempt that outlives CallTimeout surfaces
// ErrDeadlineExceeded, and a late completion cannot corrupt the
// returned value (the abandoned goroutine writes a buffered channel).
func TestCallDeadline(t *testing.T) {
	p := Policy{MaxAttempts: 1, CallTimeout: 5 * time.Millisecond}
	release := make(chan struct{})
	_, _, err := Call(p, 1, func() (int, error) {
		<-release
		return 7, nil
	})
	close(release)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
}

// TestBackoffDeterministicCappedJittered: backoff grows exponentially,
// caps at MaxBackoff, never exceeds the uncapped schedule, and is
// bit-identical for the same seed.
func TestBackoffDeterministicCappedJittered(t *testing.T) {
	p := Policy{BaseBackoff: 2 * time.Millisecond, MaxBackoff: 10 * time.Millisecond, JitterFrac: 0.5}
	for attempt := 1; attempt <= 6; attempt++ {
		a := p.Backoff(attempt, 42)
		b := p.Backoff(attempt, 42)
		if a != b {
			t.Fatalf("attempt %d: backoff not deterministic: %v vs %v", attempt, a, b)
		}
		if a > p.MaxBackoff {
			t.Fatalf("attempt %d: backoff %v exceeds cap %v", attempt, a, p.MaxBackoff)
		}
		if a <= 0 {
			t.Fatalf("attempt %d: non-positive backoff %v", attempt, a)
		}
	}
	// Jitter must stay within [d*(1-frac), d].
	noJitter := Policy{BaseBackoff: 2 * time.Millisecond, MaxBackoff: 10 * time.Millisecond}
	for attempt := 1; attempt <= 4; attempt++ {
		full := noJitter.Backoff(attempt, 0)
		jit := p.Backoff(attempt, 42)
		if jit > full || float64(jit) < float64(full)*(1-p.JitterFrac)-1 {
			t.Fatalf("attempt %d: jittered %v outside [%v, %v]",
				attempt, jit, time.Duration(float64(full)*(1-p.JitterFrac)), full)
		}
	}
	// Different seeds should not all collide.
	if p.Backoff(1, 1) == p.Backoff(1, 2) && p.Backoff(2, 1) == p.Backoff(2, 2) {
		t.Fatal("jitter ignores the seed")
	}
	// Zero policy: no backoff at all.
	if d := (Policy{}).Backoff(3, 1); d != 0 {
		t.Fatalf("zero policy backoff = %v, want 0", d)
	}
}

// TestBreakerLifecycle drives closed → open → half-open → closed and
// the reopen-on-probe-failure path with a fake clock.
func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	p := Policy{FailureThreshold: 3, OpenTimeout: time.Minute, HalfOpenSuccesses: 2}
	var transitions []State
	b := NewBreaker(p).WithClock(clock)
	b.OnChange(func(s State) { transitions = append(transitions, s) })

	// Closed: failures below threshold keep it closed; a success resets.
	b.Record(false)
	b.Record(false)
	b.Record(true)
	b.Record(false)
	b.Record(false)
	if b.State() != Closed || !b.Allow() {
		t.Fatalf("state %v after sub-threshold failures, want Closed", b.State())
	}
	// Third consecutive failure opens it.
	b.Record(false)
	if b.State() != Open {
		t.Fatalf("state %v after threshold failures, want Open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call before OpenTimeout")
	}
	// Late outcomes while open are ignored.
	b.Record(true)
	if b.State() != Open {
		t.Fatal("late Record while open changed state")
	}

	// After OpenTimeout, one probe is admitted and the state is half-open.
	now = now.Add(time.Minute)
	if !b.Allow() {
		t.Fatal("probe refused after OpenTimeout")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state %v after probe, want HalfOpen", b.State())
	}
	// A probe failure reopens immediately.
	b.Record(false)
	if b.State() != Open {
		t.Fatalf("state %v after failed probe, want Open", b.State())
	}

	// Probe again; two successes close it.
	now = now.Add(time.Minute)
	if !b.Allow() {
		t.Fatal("second probe refused")
	}
	b.Record(true)
	if b.State() != HalfOpen {
		t.Fatalf("state %v after one probe success, want HalfOpen", b.State())
	}
	b.Record(true)
	if b.State() != Closed {
		t.Fatalf("state %v after enough probe successes, want Closed", b.State())
	}

	want := []State{Open, HalfOpen, Open, HalfOpen, Closed}
	if len(transitions) != len(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions %v, want %v", transitions, want)
		}
	}
}

// TestStateString: gauge-facing state names are bounded and stable.
func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Closed: "closed", HalfOpen: "half-open", Open: "open", State(9): "invalid"} {
		if got := s.String(); got != want {
			t.Fatalf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}
