package embed

import (
	"fmt"
	"math"
	"math/rand"
)

// Separability quantifies how distinguishable two labelled point clouds
// are; the harness reports it for every Fig. 5 sketch strategy.
type Separability struct {
	// ProbeAccuracy is the training accuracy of a logistic-regression
	// probe on the points (0.5 = chance for balanced classes).
	ProbeAccuracy float64
	// CentroidMargin is the distance between class centroids divided by
	// the mean within-class spread; larger is more separable.
	CentroidMargin float64
	// Silhouette is the mean silhouette coefficient over all points in
	// [-1, 1]; positive means points sit closer to their own class.
	Silhouette float64
}

// Separate computes all separability probes for binary-labelled points
// (labels need not be 0/1; any two distinct values work, with positive
// class = label > 0).
func Separate(x [][]float64, labels []int, seed int64) (Separability, error) {
	n, _, err := validateMatrix(x)
	if err != nil {
		return Separability{}, err
	}
	if len(labels) != n {
		return Separability{}, fmt.Errorf("%w: %d labels for %d points", ErrBadInput, len(labels), n)
	}
	pos, neg := 0, 0
	for _, l := range labels {
		if l > 0 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return Separability{}, fmt.Errorf("%w: need both classes present", ErrBadInput)
	}
	return Separability{
		ProbeAccuracy:  probeAccuracy(x, labels, seed),
		CentroidMargin: centroidMargin(x, labels),
		Silhouette:     silhouette(x, labels),
	}, nil
}

// probeAccuracy trains a small logistic-regression classifier by SGD and
// returns its training accuracy.
func probeAccuracy(x [][]float64, labels []int, seed int64) float64 {
	n := len(x)
	d := len(x[0])
	// Standardize features for stable SGD.
	xs := center(x)
	for j := 0; j < d; j++ {
		var v float64
		for i := 0; i < n; i++ {
			v += xs[i][j] * xs[i][j]
		}
		sd := math.Sqrt(v / float64(n))
		if sd < 1e-12 {
			continue
		}
		for i := 0; i < n; i++ {
			xs[i][j] /= sd
		}
	}
	w := make([]float64, d)
	b := 0.0
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(n)
	lr := 0.5
	for epoch := 0; epoch < 200; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			y := 0.0
			if labels[i] > 0 {
				y = 1
			}
			s := b
			for j, v := range xs[i] {
				s += w[j] * v
			}
			p := 1 / (1 + math.Exp(-s))
			g := p - y
			for j, v := range xs[i] {
				w[j] -= lr * (g*v + 1e-4*w[j])
			}
			b -= lr * g
		}
		lr *= 0.98
	}
	correct := 0
	for i := 0; i < n; i++ {
		s := b
		for j, v := range xs[i] {
			s += w[j] * v
		}
		if (s > 0) == (labels[i] > 0) {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

// centroidMargin returns ||mu+ - mu-|| / mean within-class distance to
// the own centroid.
func centroidMargin(x [][]float64, labels []int) float64 {
	d := len(x[0])
	cpos := make([]float64, d)
	cneg := make([]float64, d)
	npos, nneg := 0, 0
	for i, row := range x {
		if labels[i] > 0 {
			npos++
			for j, v := range row {
				cpos[j] += v
			}
		} else {
			nneg++
			for j, v := range row {
				cneg[j] += v
			}
		}
	}
	for j := 0; j < d; j++ {
		cpos[j] /= float64(npos)
		cneg[j] /= float64(nneg)
	}
	var between float64
	for j := 0; j < d; j++ {
		diff := cpos[j] - cneg[j]
		between += diff * diff
	}
	between = math.Sqrt(between)
	var within float64
	for i, row := range x {
		c := cneg
		if labels[i] > 0 {
			c = cpos
		}
		var s float64
		for j, v := range row {
			diff := v - c[j]
			s += diff * diff
		}
		within += math.Sqrt(s)
	}
	within /= float64(len(x))
	if within < 1e-12 {
		within = 1e-12
	}
	return between / within
}

// silhouette returns the mean silhouette coefficient for the two classes.
func silhouette(x [][]float64, labels []int) float64 {
	n := len(x)
	dist := func(a, b []float64) float64 {
		var s float64
		for j := range a {
			diff := a[j] - b[j]
			s += diff * diff
		}
		return math.Sqrt(s)
	}
	var total float64
	counted := 0
	for i := 0; i < n; i++ {
		var sameSum, otherSum float64
		var sameN, otherN int
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d := dist(x[i], x[j])
			if (labels[i] > 0) == (labels[j] > 0) {
				sameSum += d
				sameN++
			} else {
				otherSum += d
				otherN++
			}
		}
		if sameN == 0 || otherN == 0 {
			continue
		}
		a := sameSum / float64(sameN)
		b := otherSum / float64(otherN)
		m := math.Max(a, b)
		if m < 1e-12 {
			continue
		}
		total += (b - a) / m
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}
