// Package embed provides the 2-D embedding machinery behind the paper's
// Fig. 5 ("we embed the points into 2D plane with TSNE"): a from-scratch
// exact t-SNE, PCA (power iteration), and quantitative separability
// probes. The paper's claim — "the boundary is still discernible after
// applying Count sketch" — is visual; the probes (linear-probe accuracy,
// centroid margin, silhouette) turn it into numbers the benchmark harness
// can report and tests can assert on.
package embed

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Errors returned by this package.
var (
	ErrBadInput  = errors.New("embed: invalid input")
	ErrBadConfig = errors.New("embed: invalid configuration")
)

// validateMatrix checks X is non-empty and rectangular, returning its
// dimensions.
func validateMatrix(x [][]float64) (n, d int, err error) {
	if len(x) == 0 {
		return 0, 0, fmt.Errorf("%w: empty matrix", ErrBadInput)
	}
	d = len(x[0])
	if d == 0 {
		return 0, 0, fmt.Errorf("%w: zero-dimensional rows", ErrBadInput)
	}
	for i, row := range x {
		if len(row) != d {
			return 0, 0, fmt.Errorf("%w: row %d has %d columns, want %d", ErrBadInput, i, len(row), d)
		}
	}
	return len(x), d, nil
}

// center returns a copy of x with the column means subtracted.
func center(x [][]float64) [][]float64 {
	n, d, _ := validateMatrix(x)
	mean := make([]float64, d)
	for _, row := range x {
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	out := make([][]float64, n)
	for i, row := range x {
		out[i] = make([]float64, d)
		for j, v := range row {
			out[i][j] = v - mean[j]
		}
	}
	return out
}

// PCA projects x onto its top dims principal components, computed with
// power iteration plus deflation on the covariance matrix.
func PCA(x [][]float64, dims int, seed int64) ([][]float64, error) {
	n, d, err := validateMatrix(x)
	if err != nil {
		return nil, err
	}
	if dims <= 0 || dims > d {
		return nil, fmt.Errorf("%w: dims=%d for %d-dimensional data", ErrBadConfig, dims, d)
	}
	c := center(x)
	// Covariance matrix (d x d).
	cov := make([][]float64, d)
	for i := range cov {
		cov[i] = make([]float64, d)
	}
	for _, row := range c {
		for i := 0; i < d; i++ {
			ri := row[i]
			if ri == 0 {
				continue
			}
			for j := i; j < d; j++ {
				cov[i][j] += ri * row[j]
			}
		}
	}
	inv := 1 / float64(n)
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			cov[i][j] *= inv
			cov[j][i] = cov[i][j]
		}
	}
	rng := rand.New(rand.NewSource(seed))
	components := make([][]float64, 0, dims)
	for k := 0; k < dims; k++ {
		v := powerIteration(cov, rng)
		components = append(components, v)
		// Deflate: cov -= lambda * v v^T.
		lambda := rayleigh(cov, v)
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				cov[i][j] -= lambda * v[i] * v[j]
			}
		}
	}
	out := make([][]float64, n)
	for i, row := range c {
		out[i] = make([]float64, dims)
		for k, comp := range components {
			s := 0.0
			for j, v := range row {
				s += v * comp[j]
			}
			out[i][k] = s
		}
	}
	return out, nil
}

// powerIteration finds the dominant eigenvector of a symmetric matrix.
func powerIteration(m [][]float64, rng *rand.Rand) []float64 {
	d := len(m)
	v := make([]float64, d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	normalize(v)
	next := make([]float64, d)
	for iter := 0; iter < 200; iter++ {
		for i := 0; i < d; i++ {
			s := 0.0
			for j := 0; j < d; j++ {
				s += m[i][j] * v[j]
			}
			next[i] = s
		}
		if norm(next) < 1e-12 {
			// Degenerate (zero matrix after deflation): return arbitrary
			// unit vector.
			return v
		}
		normalize(next)
		delta := 0.0
		for i := range v {
			delta += math.Abs(next[i] - v[i])
		}
		copy(v, next)
		if delta < 1e-10 {
			break
		}
	}
	return v
}

// rayleigh returns v^T M v for unit v.
func rayleigh(m [][]float64, v []float64) float64 {
	d := len(m)
	s := 0.0
	for i := 0; i < d; i++ {
		row := 0.0
		for j := 0; j < d; j++ {
			row += m[i][j] * v[j]
		}
		s += v[i] * row
	}
	return s
}

func norm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func normalize(v []float64) {
	n := norm(v)
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= n
	}
}

// TSNEConfig configures the exact t-SNE optimizer.
type TSNEConfig struct {
	Perplexity    float64 // effective neighbour count (5-50 typical)
	Iterations    int     // gradient steps
	LearningRate  float64
	Momentum      float64
	Exaggeration  float64 // early-exaggeration factor
	ExaggerateFor int     // iterations under exaggeration
	Seed          int64
}

// DefaultTSNEConfig returns a setting suitable for a few hundred points
// (the paper samples 400 instances).
func DefaultTSNEConfig() TSNEConfig {
	return TSNEConfig{
		Perplexity:    30,
		Iterations:    500,
		LearningRate:  100,
		Momentum:      0.8,
		Exaggeration:  4,
		ExaggerateFor: 100,
		Seed:          1,
	}
}

// Validate reports whether the configuration is usable.
func (c TSNEConfig) Validate() error {
	switch {
	case c.Perplexity <= 1:
		return fmt.Errorf("%w: Perplexity=%v", ErrBadConfig, c.Perplexity)
	case c.Iterations <= 0:
		return fmt.Errorf("%w: Iterations=%d", ErrBadConfig, c.Iterations)
	case c.LearningRate <= 0:
		return fmt.Errorf("%w: LearningRate=%v", ErrBadConfig, c.LearningRate)
	case c.Momentum < 0 || c.Momentum >= 1:
		return fmt.Errorf("%w: Momentum=%v", ErrBadConfig, c.Momentum)
	case c.Exaggeration < 1:
		return fmt.Errorf("%w: Exaggeration=%v", ErrBadConfig, c.Exaggeration)
	case c.ExaggerateFor < 0 || c.ExaggerateFor > c.Iterations:
		return fmt.Errorf("%w: ExaggerateFor=%d", ErrBadConfig, c.ExaggerateFor)
	}
	return nil
}

// TSNE embeds x into 2 dimensions with exact (O(n^2)) t-SNE.
func TSNE(x [][]float64, cfg TSNEConfig) ([][]float64, error) {
	n, _, err := validateMatrix(x)
	if err != nil {
		return nil, err
	}
	if cfg.ExaggerateFor > cfg.Iterations {
		cfg.ExaggerateFor = cfg.Iterations
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if float64(n) <= 3*cfg.Perplexity {
		// Shrink perplexity for tiny inputs instead of failing.
		cfg.Perplexity = math.Max(2, float64(n)/3-1)
	}
	p := joint(x, cfg.Perplexity)
	rng := rand.New(rand.NewSource(cfg.Seed))
	y := make([][]float64, n)
	vel := make([][]float64, n)
	for i := range y {
		y[i] = []float64{rng.NormFloat64() * 1e-2, rng.NormFloat64() * 1e-2}
		vel[i] = []float64{0, 0}
	}
	grad := make([][]float64, n)
	for i := range grad {
		grad[i] = []float64{0, 0}
	}
	q := make([]float64, n*n)
	for iter := 0; iter < cfg.Iterations; iter++ {
		exag := 1.0
		if iter < cfg.ExaggerateFor {
			exag = cfg.Exaggeration
		}
		// Student-t affinities in the embedding.
		var sumQ float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				dx := y[i][0] - y[j][0]
				dy := y[i][1] - y[j][1]
				v := 1 / (1 + dx*dx + dy*dy)
				q[i*n+j] = v
				q[j*n+i] = v
				sumQ += 2 * v
			}
		}
		if sumQ < 1e-12 {
			sumQ = 1e-12
		}
		for i := 0; i < n; i++ {
			grad[i][0], grad[i][1] = 0, 0
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				pij := exag * p[i*n+j]
				qij := q[i*n+j] / sumQ
				mult := 4 * (pij - qij) * q[i*n+j]
				grad[i][0] += mult * (y[i][0] - y[j][0])
				grad[i][1] += mult * (y[i][1] - y[j][1])
			}
		}
		for i := 0; i < n; i++ {
			for k := 0; k < 2; k++ {
				vel[i][k] = cfg.Momentum*vel[i][k] - cfg.LearningRate*grad[i][k]
				y[i][k] += vel[i][k]
			}
		}
	}
	return y, nil
}

// joint computes the symmetrized high-dimensional affinity matrix with
// per-point bandwidths found by binary search to match the perplexity.
func joint(x [][]float64, perplexity float64) []float64 {
	n := len(x)
	d2 := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := 0.0
			for k := range x[i] {
				diff := x[i][k] - x[j][k]
				s += diff * diff
			}
			d2[i*n+j] = s
			d2[j*n+i] = s
		}
	}
	target := math.Log(perplexity)
	p := make([]float64, n*n)
	row := make([]float64, n)
	for i := 0; i < n; i++ {
		lo, hi := 1e-20, 1e20
		beta := 1.0
		for iter := 0; iter < 64; iter++ {
			var sum, hSum float64
			for j := 0; j < n; j++ {
				if j == i {
					row[j] = 0
					continue
				}
				v := math.Exp(-d2[i*n+j] * beta)
				row[j] = v
				sum += v
				hSum += v * d2[i*n+j]
			}
			if sum < 1e-300 {
				hi = beta
				beta = (lo + hi) / 2
				continue
			}
			// Shannon entropy of the conditional distribution.
			h := math.Log(sum) + beta*hSum/sum
			if math.Abs(h-target) < 1e-5 {
				break
			}
			if h > target {
				lo = beta
				if hi > 1e19 {
					beta *= 2
				} else {
					beta = (lo + hi) / 2
				}
			} else {
				hi = beta
				beta = (lo + hi) / 2
			}
		}
		var sum float64
		for j := 0; j < n; j++ {
			sum += row[j]
		}
		if sum < 1e-300 {
			sum = 1e-300
		}
		for j := 0; j < n; j++ {
			p[i*n+j] = row[j] / sum
		}
	}
	// Symmetrize and normalize.
	out := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := (p[i*n+j] + p[j*n+i]) / (2 * float64(n))
			if v < 1e-12 {
				v = 1e-12
			}
			out[i*n+j] = v
		}
	}
	return out
}
