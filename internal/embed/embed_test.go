package embed

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// twoClusters samples n points from two well-separated Gaussians in d
// dimensions, returning points and binary labels.
func twoClusters(n, d int, gap float64, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	labels := make([]int, n)
	for i := range x {
		x[i] = make([]float64, d)
		off := 0.0
		if i%2 == 0 {
			off = gap
			labels[i] = 1
		}
		for j := range x[i] {
			x[i][j] = rng.NormFloat64()
			if j == 0 {
				x[i][j] += off
			}
		}
	}
	return x, labels
}

func TestValidateMatrix(t *testing.T) {
	if _, _, err := validateMatrix(nil); !errors.Is(err, ErrBadInput) {
		t.Fatal("nil matrix should error")
	}
	if _, _, err := validateMatrix([][]float64{{}}); !errors.Is(err, ErrBadInput) {
		t.Fatal("zero-dim rows should error")
	}
	if _, _, err := validateMatrix([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrBadInput) {
		t.Fatal("ragged matrix should error")
	}
	n, d, err := validateMatrix([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil || n != 3 || d != 2 {
		t.Fatalf("validateMatrix = %d,%d,%v", n, d, err)
	}
}

func TestPCARecoversDirection(t *testing.T) {
	// Anisotropic cloud: variance 100 along (1,1)/sqrt2, variance 1
	// orthogonally.
	rng := rand.New(rand.NewSource(3))
	n := 500
	x := make([][]float64, n)
	for i := range x {
		a := rng.NormFloat64() * 10
		b := rng.NormFloat64()
		x[i] = []float64{a/math.Sqrt2 - b/math.Sqrt2, a/math.Sqrt2 + b/math.Sqrt2}
	}
	proj, err := PCA(x, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	var v0, v1 float64
	for _, p := range proj {
		v0 += p[0] * p[0]
		v1 += p[1] * p[1]
	}
	v0 /= float64(n)
	v1 /= float64(n)
	if v0 < 80 || v0 > 120 {
		t.Fatalf("first component variance %v, want ~100", v0)
	}
	if v1 < 0.5 || v1 > 2 {
		t.Fatalf("second component variance %v, want ~1", v1)
	}
}

func TestPCAValidation(t *testing.T) {
	x := [][]float64{{1, 2}, {3, 4}}
	if _, err := PCA(x, 0, 1); !errors.Is(err, ErrBadConfig) {
		t.Fatal("dims=0 should error")
	}
	if _, err := PCA(x, 3, 1); !errors.Is(err, ErrBadConfig) {
		t.Fatal("dims>d should error")
	}
	if _, err := PCA(nil, 1, 1); !errors.Is(err, ErrBadInput) {
		t.Fatal("empty input should error")
	}
}

func TestPCADegenerateData(t *testing.T) {
	// All-identical points: projections must be finite (zeros).
	x := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	proj, err := PCA(x, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range proj {
		for _, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("degenerate PCA produced non-finite output")
			}
		}
	}
}

func TestTSNEConfigValidate(t *testing.T) {
	if err := DefaultTSNEConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*TSNEConfig){
		func(c *TSNEConfig) { c.Perplexity = 1 },
		func(c *TSNEConfig) { c.Iterations = 0 },
		func(c *TSNEConfig) { c.LearningRate = 0 },
		func(c *TSNEConfig) { c.Momentum = 1 },
		func(c *TSNEConfig) { c.Exaggeration = 0.5 },
		func(c *TSNEConfig) { c.ExaggerateFor = -1 },
		func(c *TSNEConfig) { c.ExaggerateFor = c.Iterations + 1 },
	}
	for i, mut := range bad {
		c := DefaultTSNEConfig()
		mut(&c)
		if err := c.Validate(); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("case %d: expected ErrBadConfig, got %v", i, err)
		}
	}
}

// knnPurity is the fraction of points whose nearest neighbour shares
// their label — a robust check that an embedding preserved cluster
// structure.
func knnPurity(y [][]float64, labels []int) float64 {
	n := len(y)
	match := 0
	for i := 0; i < n; i++ {
		best := -1
		bestD := math.Inf(1)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dx := y[i][0] - y[j][0]
			dy := y[i][1] - y[j][1]
			d := dx*dx + dy*dy
			if d < bestD {
				bestD = d
				best = j
			}
		}
		if (labels[i] > 0) == (labels[best] > 0) {
			match++
		}
	}
	return float64(match) / float64(n)
}

func TestTSNESeparatesClusters(t *testing.T) {
	x, labels := twoClusters(120, 10, 12, 5)
	cfg := DefaultTSNEConfig()
	cfg.Iterations = 300
	y, err := TSNE(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != len(x) || len(y[0]) != 2 {
		t.Fatalf("embedding shape wrong: %d x %d", len(y), len(y[0]))
	}
	for _, p := range y {
		if math.IsNaN(p[0]) || math.IsNaN(p[1]) || math.IsInf(p[0], 0) || math.IsInf(p[1], 0) {
			t.Fatal("t-SNE produced non-finite coordinates")
		}
	}
	if purity := knnPurity(y, labels); purity < 0.9 {
		t.Fatalf("embedding lost cluster structure: 1-NN purity %v", purity)
	}
}

func TestTSNETinyInput(t *testing.T) {
	// Fewer points than 3*perplexity: should shrink perplexity, not fail.
	x, _ := twoClusters(12, 4, 8, 2)
	cfg := DefaultTSNEConfig()
	cfg.Iterations = 50
	if _, err := TSNE(x, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTSNEValidation(t *testing.T) {
	if _, err := TSNE(nil, DefaultTSNEConfig()); !errors.Is(err, ErrBadInput) {
		t.Fatal("empty input should error")
	}
	x, _ := twoClusters(20, 3, 5, 1)
	cfg := DefaultTSNEConfig()
	cfg.Iterations = 0
	if _, err := TSNE(x, cfg); !errors.Is(err, ErrBadConfig) {
		t.Fatal("bad config should error")
	}
}

func TestSeparateOnSeparatedClusters(t *testing.T) {
	x, labels := twoClusters(200, 6, 10, 7)
	s, err := Separate(x, labels, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.ProbeAccuracy < 0.95 {
		t.Fatalf("probe accuracy %v on well-separated clusters", s.ProbeAccuracy)
	}
	if s.CentroidMargin < 2 {
		t.Fatalf("centroid margin %v too small", s.CentroidMargin)
	}
	if s.Silhouette < 0.3 {
		t.Fatalf("silhouette %v too small", s.Silhouette)
	}
}

func TestSeparateOnNoise(t *testing.T) {
	// Same distribution for both classes: probes should hover near chance.
	rng := rand.New(rand.NewSource(9))
	n := 300
	x := make([][]float64, n)
	labels := make([]int, n)
	for i := range x {
		x[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		labels[i] = i % 2
	}
	s, err := Separate(x, labels, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.ProbeAccuracy > 0.65 {
		t.Fatalf("probe accuracy %v on pure noise (overfit?)", s.ProbeAccuracy)
	}
	if math.Abs(s.Silhouette) > 0.1 {
		t.Fatalf("silhouette %v on pure noise", s.Silhouette)
	}
}

// TestSeparationOrdering: the probes must rank a clean configuration
// above a noisy one — the property the Fig. 5 reproduction relies on.
func TestSeparationOrdering(t *testing.T) {
	clean, labels := twoClusters(200, 4, 8, 11)
	noisy := make([][]float64, len(clean))
	rng := rand.New(rand.NewSource(13))
	for i, row := range clean {
		noisy[i] = make([]float64, len(row))
		for j, v := range row {
			noisy[i][j] = v + rng.NormFloat64()*8
		}
	}
	sClean, err := Separate(clean, labels, 1)
	if err != nil {
		t.Fatal(err)
	}
	sNoisy, err := Separate(noisy, labels, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sClean.ProbeAccuracy <= sNoisy.ProbeAccuracy {
		t.Fatalf("probe accuracy ordering violated: %v <= %v", sClean.ProbeAccuracy, sNoisy.ProbeAccuracy)
	}
	if sClean.CentroidMargin <= sNoisy.CentroidMargin {
		t.Fatalf("margin ordering violated: %v <= %v", sClean.CentroidMargin, sNoisy.CentroidMargin)
	}
	if sClean.Silhouette <= sNoisy.Silhouette {
		t.Fatalf("silhouette ordering violated: %v <= %v", sClean.Silhouette, sNoisy.Silhouette)
	}
}

func TestSeparateValidation(t *testing.T) {
	x := [][]float64{{1}, {2}}
	if _, err := Separate(x, []int{1}, 1); !errors.Is(err, ErrBadInput) {
		t.Fatal("label length mismatch should error")
	}
	if _, err := Separate(x, []int{1, 1}, 1); !errors.Is(err, ErrBadInput) {
		t.Fatal("single-class input should error")
	}
	if _, err := Separate(nil, nil, 1); !errors.Is(err, ErrBadInput) {
		t.Fatal("empty input should error")
	}
}

func BenchmarkTSNE200(b *testing.B) {
	x, _ := twoClusters(200, 16, 6, 1)
	cfg := DefaultTSNEConfig()
	cfg.Iterations = 100
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TSNE(x, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
