# CS-F-LTR reproduction — convenience targets. Everything is plain `go`
# under the hood; the Makefile only names the common workflows.

GO ?= go

.PHONY: all build test race cover bench bench-smoke bench-json load-smoke secagg-smoke cache-bench chaos fuzz experiments experiments-fast examples fmt fmt-check vet analyze vet-v2 analyze-fixtures clean telemetry-demo trace-demo

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# One benchmark per paper table/figure plus package micro-benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Compile every benchmark and run each for exactly one iteration under
# the race detector — cheap rot protection, mirrored by the CI job.
bench-smoke:
	$(GO) test -race -run='^$$' -bench=. -benchtime=1x ./...

# Refresh the machine-readable benchmarks: the parallelism sweep
# (BENCH_federation.json), the resilience/chaos sweep
# (BENCH_resilience.json), the answer-cache sweep (BENCH_cache.json),
# the tracing-overhead comparison (BENCH_trace.json), the sharded
# sustained-load sweep (BENCH_load.json) and the secure-aggregation
# overhead sweep (BENCH_secagg.json). All are checked in so the perf
# and availability trajectories are tracked across PRs.
bench-json:
	$(GO) run ./cmd/expbench -exp parallelism -bench-json BENCH_federation.json
	$(GO) run ./cmd/expbench -exp chaos -bench-json BENCH_resilience.json
	$(GO) run ./cmd/expbench -exp cache -bench-json BENCH_cache.json
	$(GO) run ./cmd/expbench -exp trace -bench-json BENCH_trace.json
	$(GO) run ./cmd/expbench -exp load -bench-json BENCH_load.json
	$(GO) run ./cmd/expbench -exp secagg -bench-json BENCH_secagg.json

# The sustained-load suite under the race detector: the load sweep's
# unit tests plus a test-scale fixed-QPS run through expbench — a
# replica is chaos-killed mid-run, so this smoke covers shard
# scatter-gather, failover and gateway admission control end to end,
# mirrored by the CI job.
load-smoke:
	$(GO) test -race -run 'TestLoadConfigValidate|TestRunLoadSweep' ./internal/experiments/
	$(GO) run -race ./cmd/expbench -exp load -scale test

# The secure-aggregation suite under the race detector: the secagg
# package end to end (mask cancellation, golden vectors, dropout
# recovery, wire fuzz seeds), the federation TrainSecureFedAvg tests
# (convergence parity, chaos-injected drop recovery, telemetry), the
# overhead sweep, and a test-scale sweep through expbench — mirrored by
# the CI job.
secagg-smoke:
	$(GO) test -race ./internal/secagg/
	$(GO) test -race -run 'SecAgg|TrainSecure' ./internal/federation/ ./internal/experiments/
	$(GO) run ./cmd/expbench -exp secagg -scale test

# The answer-cache suite under the race detector: every Cache-named
# test/benchmark (one iteration each) plus a test-scale Zipf-repeat
# sweep through expbench — cheap rot protection for the replay path,
# mirrored by the CI job.
cache-bench:
	$(GO) test -race -run 'Cache|Coalesce|Stale|Warm' -bench 'Cache' -benchtime=1x \
		./internal/qcache/ ./internal/federation/ ./internal/experiments/
	$(GO) run ./cmd/expbench -exp cache -scale test

# The seeded fault-injection suite under the race detector: the chaos
# and resilience packages end to end, plus the degraded-mode search,
# breaker, quorum, and per-party link tests in federation/experiments.
chaos:
	$(GO) test -race ./internal/chaos/ ./internal/resilience/
	$(GO) test -race -run 'Chaos|Degraded|Breaker|Resilience|Quorum|PartyLink' \
		./internal/federation/ ./internal/experiments/

# Short fuzz sessions over every fuzz target.
fuzz:
	$(GO) test -fuzz FuzzUnmarshalTable -fuzztime 30s ./internal/sketch/
	$(GO) test -fuzz FuzzReadOwner -fuzztime 30s ./internal/core/
	$(GO) test -fuzz FuzzRTKQueryHandling -fuzztime 30s ./internal/core/
	$(GO) test -fuzz FuzzHTTPEnvelope -fuzztime 30s ./internal/federation/
	$(GO) test -fuzz FuzzRPCDecode -fuzztime 30s ./internal/federation/
	$(GO) test -fuzz FuzzWritePrometheus -fuzztime 30s ./internal/telemetry/
	$(GO) test -fuzz FuzzTraceExport -fuzztime 30s ./internal/telemetry/
	$(GO) test -fuzz FuzzCacheKey -fuzztime 30s ./internal/qcache/
	$(GO) test -fuzz FuzzWireDecode -fuzztime 30s ./internal/wire/
	$(GO) test -fuzz FuzzSecAggDecode -fuzztime 30s ./internal/secagg/

# Regenerate every table and figure at the shape-faithful default scale
# (about 20 minutes; see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/expbench -exp all -scale default

# Same shapes in under a minute.
experiments-fast:
	$(GO) run ./cmd/expbench -exp all -scale test

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/federatedsearch
	$(GO) run ./examples/privatetf
	$(GO) run ./examples/incrementalindex
	$(GO) run ./examples/httpgateway
	$(GO) run ./examples/enterpriseranking

# Start a test-scale federation with the HTTP gateway, scrape the
# Prometheus metrics route once and shut down.
telemetry-demo:
	$(GO) build -o /tmp/csfltr-demo ./cmd/csfltr
	/tmp/csfltr-demo serve -scale test -addr 127.0.0.1:7070 -http 127.0.0.1:7080 & \
	SRV=$$!; \
	for i in $$(seq 1 50); do \
		curl -sf http://127.0.0.1:7080/v1/parties >/dev/null 2>&1 && break; \
		sleep 0.2; \
	done; \
	echo "--- GET /v1/metrics ---"; \
	curl -sf http://127.0.0.1:7080/v1/metrics | head -40; \
	STATUS=$$?; \
	kill $$SRV 2>/dev/null; \
	exit $$STATUS

# End-to-end smoke for the flight recorder, built with the race
# detector: start a test-scale federation with -trace (which runs seeded
# demo searches), list the audit ledger over the gateway, then dump the
# first trace's span tree and its Chrome trace-event JSON. Mirrored by
# the CI job.
trace-demo:
	$(GO) build -race -o /tmp/csfltr-trace-demo ./cmd/csfltr
	/tmp/csfltr-trace-demo serve -scale test -trace -addr 127.0.0.1:7170 -http 127.0.0.1:7180 & \
	SRV=$$!; \
	for i in $$(seq 1 100); do \
		curl -sf http://127.0.0.1:7180/v1/audit 2>/dev/null | grep -q trace_id && break; \
		sleep 0.2; \
	done; \
	/tmp/csfltr-trace-demo trace -http 127.0.0.1:7180; \
	STATUS=$$?; \
	if [ $$STATUS -eq 0 ]; then \
		ID=$$(curl -sf http://127.0.0.1:7180/v1/audit | sed -n 's/.*"trace_id":"\([^"]*\)".*/\1/p' | head -1); \
		/tmp/csfltr-trace-demo trace -http 127.0.0.1:7180 -id $$ID -chrome /tmp/csfltr-trace.json; \
		STATUS=$$?; \
	fi; \
	kill $$SRV 2>/dev/null; \
	exit $$STATUS

fmt:
	gofmt -w .

# Fail (listing the offenders) if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Project-specific static analysis, v2 suite: interprocedural privacy
# taint, lock-copy/lock-hold concurrency hygiene, merge-path
# determinism, epsilon budget-flow, dropped errors, metric-label
# cardinality, and suppression auditing. See DESIGN.md §14.
analyze:
	$(GO) run ./cmd/csfltr-vet ./...

# Alias kept so "the v2 analyzers" are one obvious command.
vet-v2: analyze

# The analyzers' own fixture suite (testdata packages with // want
# expectations plus the harness meta-test), shuffled so fixture results
# cannot depend on execution order. Mirrored by the CI job.
analyze-fixtures:
	$(GO) test -shuffle=on -short -run 'TestFixtures|TestFixtureHarness|TestParseAllow|TestReasonless' ./internal/analysis/

clean:
	$(GO) clean ./...
