// Package csfltr is a from-scratch Go implementation of CS-F-LTR —
// "An Efficient Approach for Cross-Silo Federated Learning to Rank"
// (Wang, Tong, Shi, Xu; ICDE 2021).
//
// CS-F-LTR lets N enterprises (silos) collaboratively train a
// learning-to-rank model over cross-partitioned data — documents AND
// queries are spread across parties — without exchanging raw text. Its
// building blocks, all implemented here:
//
//   - a privacy-preserving cross-party term-frequency query: per-document
//     Count/Count-Min sketches with keyed hashing, query obfuscation via
//     a private index set, and epsilon-DP Laplace perturbation of results
//     (paper Section IV; packages internal/sketch, internal/dp,
//     internal/core);
//   - the reverse top-K sketch (RTK-Sketch), which answers "which of your
//     documents are most relevant to this term?" in one round trip and
//     O(alpha*K*z) work instead of the NAIVE O(n*z) scan (Section V;
//     internal/core);
//   - the federation substrate: parties, an honest-but-curious
//     coordinating server with byte-level traffic accounting, a
//     Diffie-Hellman ceremony that keeps hash keys away from the server,
//     and an optional TCP net/rpc transport (internal/federation,
//     internal/keyex);
//   - the LTR layer: the paper's 16 features (length, TF, IDF, TF-IDF,
//     BM25, LMIR.ABS/DIR/JM on body and title), pointwise linear models,
//     round-robin distributed SGD, and ERR/nDCG metrics
//     (internal/features, internal/ltr);
//   - the full benchmark harness regenerating every table and figure of
//     the paper's evaluation (internal/experiments; see EXPERIMENTS.md).
//
// This facade re-exports the high-level entry points. Most applications
// need only three calls:
//
//	cfg := csfltr.DefaultSimulationConfig()
//	result, err := csfltr.RunSimulation(cfg)
//	fmt.Print(csfltr.RenderTable(result))
//
// For custom corpora, build a Federation directly and ingest documents:
//
//	fed, _ := csfltr.NewFederation([]string{"A", "B"}, csfltr.DefaultParams(), 1)
//	partyA, _ := fed.Party("A")
//	partyA.IngestDocument(doc)
//	top, cost, _ := fed.ReverseTopK("B", "A", csfltr.FieldBody, term, 10, true)
package csfltr

import (
	"io"

	"csfltr/internal/core"
	"csfltr/internal/corpus"
	"csfltr/internal/experiments"
	"csfltr/internal/federation"
	"csfltr/internal/ltr"
	"csfltr/internal/textkit"
)

// Params are the shared protocol parameters of a federation (sketch
// geometry z x w, obfuscation width z1, DP budget epsilon, RTK parameters
// alpha, beta, K).
type Params = core.Params

// DefaultParams returns the paper's default parameter setting
// (alpha=5, beta=0.1, w=200, z=30, K=150, epsilon=0.5).
func DefaultParams() Params { return core.DefaultParams() }

// Federation is a set of parties around a coordinating server after a
// completed setup ceremony.
type Federation = federation.Federation

// Party is one silo's endpoint: sketch state for both document fields, a
// querier and a privacy accountant.
type Party = federation.Party

// Field selects the document field a cross-party query addresses.
type Field = federation.Field

// Field constants.
const (
	FieldBody  = federation.FieldBody
	FieldTitle = federation.FieldTitle
)

// DocCount is one reverse top-K result entry.
type DocCount = core.DocCount

// SearchHit is one federated search result (see
// Federation.FederatedSearch: a whole query ranked across every other
// party's private documents).
type SearchHit = federation.SearchHit

// Cost records protocol communication and computation cost.
type Cost = core.Cost

// Document is a retrievable unit (title + body term sequences).
type Document = textkit.Document

// Query is a search query (term sequence).
type Query = textkit.Query

// Vocabulary interns term strings to the dense numeric IDs the sketches
// hash.
type Vocabulary = textkit.Vocabulary

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary { return textkit.NewVocabulary() }

// Tokenize lowercases and splits text into terms.
func Tokenize(text string) []string { return textkit.Tokenize(text) }

// NewDocument builds a document from raw title/body text using vocab.
// Topic is recorded as unknown (-1).
func NewDocument(vocab *Vocabulary, id int, title, body string) *Document {
	return textkit.NewDocument(id, -1,
		vocab.InternAll(textkit.Tokenize(title)),
		vocab.InternAll(textkit.Tokenize(body)))
}

// NewQuery builds a query from raw text using vocab.
func NewQuery(vocab *Vocabulary, id int, text string) *Query {
	return textkit.NewQuery(id, -1, vocab.InternAll(textkit.Tokenize(text)))
}

// NewFederation runs the full setup ceremony (Diffie-Hellman pairwise
// agreement, sealed hash-seed distribution) and returns a ready
// federation.
func NewFederation(names []string, params Params, rngSeed int64) (*Federation, error) {
	return federation.New(names, params, rngSeed)
}

// NewDeterministicFederation skips the ceremony and uses a fixed hash
// seed — for reproducible experiments.
func NewDeterministicFederation(names []string, params Params, hashSeed uint64, rngSeed int64) (*Federation, error) {
	return federation.NewDeterministic(names, params, hashSeed, rngSeed)
}

// Metrics bundles ERR, nDCG and nDCG@10.
type Metrics = ltr.Metrics

// SimulationConfig configures an end-to-end CS-F-LTR simulation on the
// synthetic MS MARCO-style corpus.
type SimulationConfig = experiments.PipelineConfig

// DefaultSimulationConfig returns the laptop-scale default simulation.
func DefaultSimulationConfig() SimulationConfig {
	return experiments.DefaultPipelineConfig()
}

// CorpusConfig controls synthetic corpus generation.
type CorpusConfig = corpus.Config

// SimulationResult is the Table-I style outcome of a simulation: metrics
// for Local, Local+, Global and CS-F-LTR on a shared external test set.
type SimulationResult = experiments.Table1Result

// RunSimulation generates a corpus, builds the federation, augments every
// party's data through the privacy-preserving protocols, trains all four
// methods and evaluates them.
func RunSimulation(cfg SimulationConfig) (*SimulationResult, error) {
	p, err := experiments.NewPipeline(cfg)
	if err != nil {
		return nil, err
	}
	return experiments.RunTable1(p)
}

// RenderTable formats a SimulationResult like the paper's Table I.
func RenderTable(res *SimulationResult) string { return experiments.RenderTable1(res) }

// TrainedModel is a trained CS-F-LTR ranking model bundled with its
// feature normalizer; it serializes with WriteTo and scores raw feature
// vectors with Score.
type TrainedModel = experiments.TrainedModel

// TrainModel runs the full CS-F-LTR training path (synthetic corpus,
// sketches, privacy-preserving augmentation, round-robin distributed
// SGD) and returns the model with its test metrics.
func TrainModel(cfg SimulationConfig) (*TrainedModel, error) {
	p, err := experiments.NewPipeline(cfg)
	if err != nil {
		return nil, err
	}
	return experiments.TrainCSFLTR(p)
}

// ReadTrainedModel restores a model persisted with TrainedModel.WriteTo.
func ReadTrainedModel(r io.Reader) (*TrainedModel, error) {
	return experiments.ReadTrainedModel(r)
}
