// Incremental indexing: the RTK-Sketch supports live document insertion
// and deletion (Algorithm 4's Update/Delete), and the whole owner state
// survives process restarts via crash-safe snapshots — the operational
// story behind the paper's "if some party wants to update new documents
// or delete old documents, they only have to do incremental updates
// instead of re-constructing the whole sketch".
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"csfltr/internal/core"
	"csfltr/internal/dp"
	"csfltr/internal/store"
	"csfltr/internal/textkit"
)

const seed = 1234

func main() {
	params := core.DefaultParams()
	params.Epsilon = 0
	params.K = 3

	owner, err := core.NewOwner(params, seed, dp.Disabled())
	if err != nil {
		log.Fatal(err)
	}
	vocab := textkit.NewVocabulary()
	add := func(id int, text string) {
		counts := map[uint64]int64{}
		for _, tok := range textkit.Tokenize(text) {
			counts[uint64(vocab.Intern(tok))]++
		}
		if err := owner.AddDocument(id, counts); err != nil {
			log.Fatal(err)
		}
	}

	add(1, "kubernetes cluster upgrade guide: upgrade nodes, upgrade control plane, drain pods")
	add(2, "postgres vacuum tuning for large tables")
	add(3, "upgrade postgres major version with logical replication; upgrade checklist")

	querier, err := core.NewQuerier(params, seed, rand.New(rand.NewSource(7)))
	if err != nil {
		log.Fatal(err)
	}
	term, _ := vocab.Lookup("upgrade")
	show := func(stage string) {
		top, _, err := core.RTKReverseTopK(querier, owner, uint64(term), 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s top docs for %q: ", stage, "upgrade")
		for i, dc := range top {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("doc%d(%.0f)", dc.DocID, dc.Count)
		}
		fmt.Println()
	}
	show("initial index")

	// Delete doc 1 (Algorithm 4's deletion walks every heap).
	if err := owner.RemoveDocument(1); err != nil {
		log.Fatal(err)
	}
	show("after deleting doc 1")

	// Add a new document incrementally — no rebuild.
	add(4, "firmware upgrade notes: bootloader upgrade, safety interlocks, rollback")
	show("after adding doc 4")

	// Snapshot to disk and restore into a fresh process-like owner.
	dir, err := os.MkdirTemp("", "csfltr-index-*")
	if err != nil {
		log.Fatal(err)
	}
	//csfltr:allow uncheckederr -- best-effort temp-dir cleanup in an example
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "owner.snap")
	if err := store.SaveOwner(path, owner); err != nil {
		log.Fatal(err)
	}
	restored, err := store.LoadOwner(path, dp.Disabled())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot round trip: %d docs restored from %s\n",
		len(restored.DocIDs()), filepath.Base(path))
	owner = restored
	show("after restart (restored)")
}
