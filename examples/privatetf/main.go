// Private term-frequency queries: what the document owner's answers look
// like across privacy budgets, how the obfuscation hides the query term,
// and how the accountant enforces a per-peer budget — Section IV of the
// paper, end to end.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"csfltr/internal/core"
	"csfltr/internal/dp"
	"csfltr/internal/textkit"
)

const seed = 42

func main() {
	vocab := textkit.NewVocabulary()
	body := vocab.InternAll(textkit.Tokenize(
		`privacy preserving federated ranking uses sketches; the sketches
		 compress documents so term counts stay private; ranking quality
		 survives because sketches answer term frequency queries with
		 bounded error; privacy noise hides individual terms`))
	counts := map[uint64]int64{}
	for _, t := range body {
		counts[uint64(t)]++
	}
	probe, _ := vocab.Lookup("sketches") // appears 3 times
	truth := counts[uint64(probe)]

	params := core.DefaultParams()
	params.W = 512 // wide sketch: isolate the DP noise

	fmt.Printf("true count of %q: %d\n\n", "sketches", truth)
	fmt.Println("epsilon   mean-estimate   mean-abs-error   (500 queries each)")
	for _, eps := range []float64{0, 8, 2, 0.5, 0.1} {
		p := params
		p.Epsilon = eps
		mech, err := dp.ForEpsilon(eps, rand.New(rand.NewSource(seed)))
		if err != nil {
			log.Fatal(err)
		}
		owner, err := core.NewOwner(p, seed, mech)
		if err != nil {
			log.Fatal(err)
		}
		if err := owner.AddDocument(0, counts); err != nil {
			log.Fatal(err)
		}
		querier, err := core.NewQuerier(p, seed, rand.New(rand.NewSource(seed+1)))
		if err != nil {
			log.Fatal(err)
		}
		var sum, absErr float64
		const trials = 500
		for i := 0; i < trials; i++ {
			q, priv := querier.BuildQuery(uint64(probe))
			resp, err := owner.AnswerTF(0, q)
			if err != nil {
				log.Fatal(err)
			}
			est, err := querier.Recover(priv, resp)
			if err != nil {
				log.Fatal(err)
			}
			sum += est
			absErr += math.Abs(est - float64(truth))
		}
		label := fmt.Sprintf("%g", eps)
		if eps == 0 {
			label = "off"
		}
		fmt.Printf("%-9s %-15.2f %.2f\n", label, sum/trials, absErr/trials)
	}

	// What the server actually sees: z column indexes, only z1 of which
	// hash the real term — indistinguishable from the decoys.
	querier, _ := core.NewQuerier(params, seed, rand.New(rand.NewSource(seed+2)))
	q, priv := querier.BuildQuery(uint64(probe))
	fmt.Printf("\none obfuscated query as the server sees it (z=%d, z1=%d):\n  cols=%v\n",
		params.Z, params.Z1, q.Cols)
	fmt.Printf("the querier's private index set (never transmitted): rows %v\n", priv.PV)

	// Budget enforcement: a 1.5-epsilon allowance admits three queries at
	// epsilon=0.5 and refuses the fourth.
	acct := dp.NewAccountant(1.5)
	for i := 1; i <= 4; i++ {
		err := acct.Spend("owner-party", 0.5)
		status := "ok"
		if err != nil {
			status = err.Error()
		}
		fmt.Printf("query %d against owner-party: %s (spent %.1f)\n",
			i, status, acct.Spent("owner-party"))
	}
}
