// Quickstart: two companies build a federation, sketch their private
// documents, and one runs privacy-preserving cross-party queries against
// the other — the minimal CS-F-LTR workflow through the public facade.
package main

import (
	"fmt"
	"log"

	"csfltr"
)

func main() {
	// Protocol parameters shared by the federation: a 30x200 sketch per
	// document, 10 of 30 hash rows real per query (the rest are decoys),
	// Laplace noise at epsilon=0.5 on every answer.
	params := csfltr.DefaultParams()
	params.K = 3

	// The ceremony runs Diffie-Hellman pairwise key agreement so that the
	// coordinating server never learns the hash keys.
	fed, err := csfltr.NewFederation([]string{"acme", "globex"}, params, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Both parties intern terms through a shared vocabulary (in a real
	// deployment this is a shared tokenizer + dictionary).
	vocab := csfltr.NewVocabulary()

	// Globex privately holds three documents; only their sketches will
	// ever be queried.
	globex, err := fed.Party("globex")
	if err != nil {
		log.Fatal(err)
	}
	docs := []*csfltr.Document{
		csfltr.NewDocument(vocab, 0, "Go database internals",
			"database storage engines in go, b-tree pages, write ahead logging, database recovery"),
		csfltr.NewDocument(vocab, 1, "Cooking with cast iron",
			"skillet recipes and seasoning, cast iron care, searing steak"),
		csfltr.NewDocument(vocab, 2, "Streaming sketches",
			"count min sketch and count sketch summarize database streams with bounded memory"),
	}
	for _, d := range docs {
		if err := globex.IngestDocument(d); err != nil {
			log.Fatal(err)
		}
	}

	// Acme wants to know which Globex documents are most relevant to the
	// term "database" — without Globex revealing its corpus and without
	// revealing the query term to the server.
	term, ok := vocab.Lookup("database")
	if !ok {
		log.Fatal("term not in vocabulary")
	}

	// Reverse top-K via the RTK-Sketch: one round trip.
	top, cost, err := fed.ReverseTopK("acme", "globex", csfltr.FieldBody, uint64(term), 3, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reverse top-3 for %q at globex (%d message, %d bytes down):\n",
		"database", cost.Messages, cost.BytesReceived)
	for i, dc := range top {
		fmt.Printf("  %d. doc %d, estimated count %.1f\n", i+1, dc.DocID, dc.Count)
	}

	// A point term-frequency query against a specific document
	// (Algorithms 1+2): the answer carries sketch noise and DP noise.
	tf, err := fed.CrossTF("acme", "globex", csfltr.FieldBody, 0, uint64(term))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimated count of %q in globex doc 0: %.1f (true count 2, epsilon=%.1f)\n",
		"database", tf, params.Epsilon)

	// The querier's accountant tracked the privacy spend against globex.
	acme, _ := fed.Party("acme")
	fmt.Printf("acme's cumulative privacy spend against globex: epsilon=%.1f\n",
		acme.Accountant().Spent("globex"))
}
