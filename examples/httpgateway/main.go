// HTTP gateway: the federation's second transport. The coordinator
// exposes a REST/JSON surface (for silos not written in Go); this
// example starts the gateway, shows the raw JSON a curl user would see,
// then drives the full privacy-preserving protocol through the Go HTTP
// client.
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"

	"csfltr/internal/core"
	"csfltr/internal/federation"
	"csfltr/internal/textkit"
)

const sharedSeed = 0xbeef

func main() {
	params := core.DefaultParams()
	params.Epsilon = 0
	params.K = 3

	fed, err := federation.NewDeterministic([]string{"hub", "lab"}, params, sharedSeed, 1)
	if err != nil {
		log.Fatal(err)
	}
	vocab := textkit.NewVocabulary()
	lab, _ := fed.Party("lab")
	ingest := func(id int, text string) {
		doc := textkit.NewDocument(id, -1, nil, vocab.InternAll(textkit.Tokenize(text)))
		if err := lab.IngestDocument(doc); err != nil {
			log.Fatal(err)
		}
	}
	ingest(0, "genome sequencing pipeline alignment variants genome annotations")
	ingest(1, "office seating chart")
	ingest(2, "genome browser tracks and visualization")

	// Serve the gateway (httptest keeps the example self-contained; in a
	// deployment this is http.ListenAndServe(addr, handler)).
	ts := httptest.NewServer(federation.HTTPHandler(fed.Server))
	defer ts.Close()
	fmt.Println("HTTP gateway listening on", ts.URL)

	// What a curl user sees.
	show := func(path string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		fmt.Printf("GET %-38s -> %s", path, body)
	}
	show("/v1/parties")
	show("/v1/parties/lab/body/docs")
	show("/v1/parties/lab/body/docs/0/meta")

	// The full protocol through the HTTP-backed OwnerAPI.
	querier, err := core.NewQuerier(params, sharedSeed, rand.New(rand.NewSource(3)))
	if err != nil {
		log.Fatal(err)
	}
	remote := federation.NewHTTPOwner(ts.URL, "lab", federation.FieldBody, ts.Client())
	term, _ := vocab.Lookup("genome")
	top, cost, err := core.RTKReverseTopK(querier, remote, uint64(term), 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreverse top-3 for %q via HTTP (%d B down):\n", "genome", cost.BytesReceived)
	for i, dc := range top {
		fmt.Printf("  %d. doc %d (est. count %.0f)\n", i+1, dc.DocID, dc.Count)
	}
}
