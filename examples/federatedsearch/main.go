// Federated search over TCP: a coordinating server hosts two companies'
// sketched document collections and exports them over net/rpc; a remote
// querier dials in and runs both reverse top-K algorithms, comparing
// their cost — the deployment topology of Section III with real sockets.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"csfltr/internal/core"
	"csfltr/internal/federation"
	"csfltr/internal/textkit"
)

// sharedSeed stands in for the DH-agreed hash seed; see package keyex
// for the real ceremony (the server never learns this value).
const sharedSeed = 0xFEED5EED

func main() {
	params := core.DefaultParams()
	params.Epsilon = 0 // measure the sketches, not the DP noise
	params.K = 5

	vocab := textkit.NewVocabulary()

	// --- Server side: two document owners behind one coordinator. ---
	fed, err := federation.NewDeterministic([]string{"press", "wire"}, params, sharedSeed, 1)
	if err != nil {
		log.Fatal(err)
	}
	ingest := func(party string, texts map[int]string) {
		p, err := fed.Party(party)
		if err != nil {
			log.Fatal(err)
		}
		for id, text := range texts {
			doc := textkit.NewDocument(id, -1,
				vocab.InternAll(textkit.Tokenize(fmt.Sprintf("%s article %d", party, id))),
				vocab.InternAll(textkit.Tokenize(text)))
			if err := p.IngestDocument(doc); err != nil {
				log.Fatal(err)
			}
		}
	}
	ingest("press", map[int]string{
		0: "election results election night coverage polls close early",
		1: "storm warning coastal flooding evacuation routes announced",
		2: "election recount ordered after narrow election margin",
	})
	ingest("wire", map[int]string{
		0: "markets rally as election uncertainty fades election trading volume spikes",
		1: "cooking column: one pot pasta for weeknights",
		2: "election watchdog reports record election turnout election observers deployed",
	})

	srv, err := federation.ListenAndServe(fed.Server, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("federation server listening on", srv.Addr)

	// --- Client side: a remote querier with only the shared hash seed. ---
	client, err := federation.Dial(srv.Addr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	querier, err := core.NewQuerier(params, sharedSeed, rand.New(rand.NewSource(7)))
	if err != nil {
		log.Fatal(err)
	}
	term, _ := vocab.Lookup("election")

	for _, owner := range []string{"press", "wire"} {
		remote := client.OwnerFor(owner, federation.FieldBody)
		rtk, rtkCost, err := core.RTKReverseTopK(querier, remote, uint64(term), 3)
		if err != nil {
			log.Fatal(err)
		}
		naive, naiveCost, err := core.NaiveReverseTopK(querier, remote, uint64(term), 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%q at party %s:\n", "election", owner)
		fmt.Printf("  RTK   (1 round trip, %4d B down): %v\n", rtkCost.BytesReceived, fmtDocs(rtk))
		fmt.Printf("  NAIVE (%d round trips, %4d B down): %v\n",
			naiveCost.Messages, naiveCost.BytesReceived, fmtDocs(naive))
	}

	tr := fed.Server.Traffic()
	fmt.Printf("\nserver relayed %d messages, %d bytes in total\n", tr.Messages, tr.Bytes)
}

func fmtDocs(dcs []core.DocCount) string {
	out := ""
	for i, dc := range dcs {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("doc%d(%.0f)", dc.DocID, dc.Count)
	}
	if out == "" {
		out = "(none)"
	}
	return out
}
