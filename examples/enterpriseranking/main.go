// Enterprise ranking: the full CS-F-LTR story on the synthetic corpus —
// four companies with cross-partitioned documents and queries, two of
// them with poorly curated labels, comparing Local, Local+, Global
// (horizontal FL) and CS-F-LTR on a shared external test set, exactly the
// comparison of the paper's Table I.
package main

import (
	"fmt"
	"log"

	"csfltr"
)

func main() {
	cfg := csfltr.DefaultSimulationConfig()
	// Smaller than the default experiment scale so the example finishes
	// in a few seconds, but the same structure.
	cfg.Corpus.DocsPerParty = 300
	cfg.Corpus.QueriesPerParty = 16
	cfg.Corpus.DocLen = 150
	// Parties C and D hold noisy relevance labels — the data-quality
	// divergence behind the paper's fairness observation.
	cfg.Corpus.LabelNoise = []float64{0, 0, 0.6, 0.6}
	cfg.AugPerQuery = 20
	cfg.Rounds = 15

	fmt.Println("simulating a 4-party cross-silo federation...")
	res, err := csfltr.RunSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(csfltr.RenderTable(res))

	fmt.Println("\nreading the table:")
	fmt.Printf("- CS-F-LTR nDCG@10 %.3f vs average Local %.3f: collaboration pays off\n",
		res.CSFLTR.NDCG10, res.Local.Average.NDCG10)
	fmt.Printf("- Global (horizontal FL, no cross-party features) reaches %.3f\n",
		res.Global.NDCG10)
	worst, best := res.Local.PerParty[0].NDCG10, res.Local.PerParty[0].NDCG10
	for _, m := range res.Local.PerParty {
		if m.NDCG10 < worst {
			worst = m.NDCG10
		}
		if m.NDCG10 > best {
			best = m.NDCG10
		}
	}
	fmt.Printf("- local models range %.3f-%.3f: parties with noisy labels gain the most\n",
		worst, best)
}
