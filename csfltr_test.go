package csfltr

import (
	"strings"
	"testing"

	"csfltr/internal/experiments"
)

func TestFacadeDocumentHelpers(t *testing.T) {
	vocab := NewVocabulary()
	d := NewDocument(vocab, 0, "Federated Ranking", "ranking documents across silos, federated ranking works")
	if d.TitleLen() != 2 {
		t.Fatalf("title len = %d", d.TitleLen())
	}
	if d.Len() != 7 {
		t.Fatalf("body len = %d", d.Len())
	}
	q := NewQuery(vocab, 0, "federated ranking")
	if len(q.UniqueTerms()) != 2 {
		t.Fatalf("query terms = %v", q.Terms)
	}
	// "ranking" interned once: same id in doc title and query.
	id, ok := vocab.Lookup("ranking")
	if !ok {
		t.Fatal("vocabulary lost a term")
	}
	if q.Terms[1] != id {
		t.Fatal("query and document vocabularies disagree")
	}
	if got := Tokenize("A-b c"); len(got) != 3 {
		t.Fatalf("Tokenize = %v", got)
	}
}

func TestFacadeFederationRoundTrip(t *testing.T) {
	params := DefaultParams()
	params.Epsilon = 0
	params.W = 512
	params.K = 3
	fed, err := NewDeterministicFederation([]string{"A", "B"}, params, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	vocab := NewVocabulary()
	b, err := fed.Party("B")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.IngestDocument(NewDocument(vocab, 0, "gopher", "go go go database systems")); err != nil {
		t.Fatal(err)
	}
	if err := b.IngestDocument(NewDocument(vocab, 1, "other", "entirely unrelated words here")); err != nil {
		t.Fatal(err)
	}
	goID, _ := vocab.Lookup("go")
	top, cost, err := fed.ReverseTopK("A", "B", FieldBody, uint64(goID), 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) == 0 || top[0].DocID != 0 {
		t.Fatalf("reverse top-K = %v", top)
	}
	if cost.Messages != 1 {
		t.Fatalf("RTK cost = %+v", cost)
	}
	tf, err := fed.CrossTF("A", "B", FieldBody, 0, uint64(goID))
	if err != nil {
		t.Fatal(err)
	}
	if tf != 3 {
		t.Fatalf("CrossTF = %v, want 3", tf)
	}
}

func TestFacadeSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation is slow in -short mode")
	}
	cfg := experiments.TestPipelineConfig()
	res, err := RunSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CSFLTR.NDCG == 0 {
		t.Fatal("simulation learned nothing")
	}
	out := RenderTable(res)
	if !strings.Contains(out, "CS-F-LTR") {
		t.Fatalf("rendered table malformed:\n%s", out)
	}
}

func TestFacadeCeremonyFederation(t *testing.T) {
	fed, err := NewFederation([]string{"A", "B"}, DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fed.Parties) != 2 {
		t.Fatalf("parties = %d", len(fed.Parties))
	}
}
