package csfltr

// This file holds one benchmark per table and figure of the paper's
// evaluation section (see DESIGN.md's per-experiment index and
// EXPERIMENTS.md for the recorded results). Each benchmark runs the
// corresponding experiments runner at a laptop-scale configuration that
// preserves the paper's workload shape; `go test -bench=.` regenerates
// every row/series.

import (
	"fmt"
	"math/rand"
	"testing"

	"csfltr/internal/core"
	"csfltr/internal/dp"
	"csfltr/internal/experiments"
)

// benchFig4 runs one Fig. 4 sweep column per iteration and reports the
// mean cover rate of the last run as a benchmark metric.
func benchFig4(b *testing.B, param string, values []float64) {
	b.Helper()
	cfg := experiments.DefaultFig4Config()
	cfg.Docs = 1500
	cfg.DocLen = 150
	cfg.ProbeTerms = 5
	cfg.NaiveTerms = 1
	var points []experiments.Fig4Point
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err = experiments.RunFig4Sweep(cfg, param, values)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var cover float64
	for _, p := range points {
		cover += p.CoverRate
	}
	b.ReportMetric(cover/float64(len(points)), "mean-cover-rate")
}

// BenchmarkFig4Alpha regenerates Fig. 4 column 1 (impact of alpha).
func BenchmarkFig4Alpha(b *testing.B) { benchFig4(b, "alpha", []float64{1, 2, 3, 5, 7, 10}) }

// BenchmarkFig4Beta regenerates Fig. 4 column 2 (impact of beta).
func BenchmarkFig4Beta(b *testing.B) { benchFig4(b, "beta", []float64{0.05, 0.1, 0.2, 0.3, 0.5}) }

// BenchmarkFig4K regenerates Fig. 4 column 3 (impact of K).
func BenchmarkFig4K(b *testing.B) { benchFig4(b, "k", []float64{50, 100, 150, 200, 300}) }

// BenchmarkFig4W regenerates Fig. 4 column 4 (impact of hash range w).
func BenchmarkFig4W(b *testing.B) { benchFig4(b, "w", []float64{50, 100, 200, 400, 800}) }

// BenchmarkFig4Z regenerates Fig. 4 column 5 (impact of hash count z).
func BenchmarkFig4Z(b *testing.B) { benchFig4(b, "z", []float64{10, 20, 30, 50, 70}) }

// BenchmarkNaiveVsRTK times single reverse top-K queries under both
// algorithms at the same owner (Fig. 4's time-cost comparison in
// miniature): the per-op numbers of the two sub-benchmarks are directly
// comparable.
func BenchmarkNaiveVsRTK(b *testing.B) {
	params := core.DefaultParams()
	params.Epsilon = 0
	querier, err := core.NewQuerier(params, 7, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	owner, err := core.NewOwner(params, 7, dp.Disabled())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	const probe = uint64(99991)
	for id := 0; id < 3000; id++ {
		counts := make(map[uint64]int64)
		for j := 0; j < 120; j++ {
			counts[uint64(rng.Intn(20000))]++
		}
		if id%7 == 0 {
			counts[probe] = int64(1 + rng.Intn(40))
		}
		if err := owner.AddDocument(id, counts); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.NaiveReverseTopK(querier, owner, probe, params.K); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rtk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.RTKReverseTopK(querier, owner, probe, params.K); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHeadlineSpeedup regenerates the Section VI-D headline
// ("NAIVE >100s vs RTK <10ms; space to ~1/5"), reporting the measured
// speedup and space-reduction factors as metrics.
func BenchmarkHeadlineSpeedup(b *testing.B) {
	cfg := experiments.DefaultFig4Config()
	cfg.Docs = 3000
	cfg.DocLen = 200
	cfg.ProbeTerms = 3
	cfg.NaiveTerms = 2
	var res *experiments.HeadlineResult
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunHeadline(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(res.Speedup, "speedup-x")
	b.ReportMetric(res.SpaceReduction, "space-reduction-x")
	b.ReportMetric(res.CoverRate, "cover-rate")
}

// BenchmarkFig5Embed regenerates Fig. 5: feature extraction under three
// representative sketch strategies plus t-SNE embedding and separability
// probes. The probe accuracies of the exact and w=200 panels are
// reported; the paper's claim is that they stay close.
func BenchmarkFig5Embed(b *testing.B) {
	cfg := experiments.TestFig5Config()
	cfg.Samples = 120
	strategies := []experiments.Fig5Strategy{
		experiments.PaperFig5Strategies()[0],
		experiments.PaperFig5Strategies()[1],
		experiments.PaperFig5Strategies()[7],
	}
	var panels []experiments.Fig5Panel
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		panels, err = experiments.RunFig5(cfg, strategies)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(panels[0].Probes.ProbeAccuracy, "exact-probe-acc")
	b.ReportMetric(panels[1].Probes.ProbeAccuracy, "sketch-probe-acc")
	b.ReportMetric(panels[2].Probes.ProbeAccuracy, "z1eq1-probe-acc")
}

// BenchmarkTable1Pipeline regenerates Table I end-to-end: corpus,
// federation, augmentation through the privacy-preserving protocols,
// four training regimes and evaluation. Reports CS-F-LTR and mean-local
// nDCG@10 so the "who wins" shape is visible in the bench output.
func BenchmarkTable1Pipeline(b *testing.B) {
	cfg := experiments.TestPipelineConfig()
	var res *experiments.Table1Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := experiments.NewPipeline(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err = experiments.RunTable1(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(res.CSFLTR.NDCG10, "csfltr-ndcg10")
	b.ReportMetric(res.Local.Average.NDCG10, "local-avg-ndcg10")
	b.ReportMetric(res.Global.NDCG10, "global-ndcg10")
}

// BenchmarkFig6aEpsilon regenerates Fig. 6a (impact of privacy budget).
func BenchmarkFig6aEpsilon(b *testing.B) {
	cfg := experiments.TestPipelineConfig()
	eps := []float64{0, 0.5, 2}
	var points []experiments.Fig6aPoint
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err = experiments.RunFig6a(cfg, eps)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, p := range points {
		b.ReportMetric(p.Metrics.NDCG10, fmt.Sprintf("ndcg10-eps%g", p.Epsilon))
	}
}

// BenchmarkSSEVsSketch runs the encryption-based comparator (DESIGN.md
// E13): SSE exact keyword search vs the RTK-Sketch on the same workload,
// reporting both per-query times as metrics.
func BenchmarkSSEVsSketch(b *testing.B) {
	cfg := experiments.TestFig4Config()
	cfg.Docs = 1000
	var res *experiments.SSEComparison
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunSSEComparison(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(res.SSEQueryMicros, "sse-query-us")
	b.ReportMetric(res.SketchQueryMicros, "rtk-query-us")
	b.ReportMetric(res.SketchCover, "rtk-cover")
}

// BenchmarkFig6bParties regenerates Fig. 6b (impact of number of
// parties).
func BenchmarkFig6bParties(b *testing.B) {
	cfg := experiments.TestPipelineConfig()
	ns := []int{1, 2, 4}
	var points []experiments.Fig6bPoint
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err = experiments.RunFig6b(cfg, ns)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, p := range points {
		b.ReportMetric(p.Metrics.NDCG10, fmt.Sprintf("ndcg10-n%d", p.Parties))
	}
}
