module csfltr

go 1.22
