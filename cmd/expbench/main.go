// Command expbench regenerates the tables and figures of the CS-F-LTR
// paper's evaluation section (see EXPERIMENTS.md for the mapping and
// recorded results).
//
// Usage:
//
//	expbench -exp table1            # Table I
//	expbench -exp fig4-alpha        # Fig. 4, impact of alpha
//	expbench -exp fig4              # all five Fig. 4 columns
//	expbench -exp fig5              # Fig. 5 panels + separability probes
//	expbench -exp fig6a             # Fig. 6a, privacy budget sweep
//	expbench -exp fig6b             # Fig. 6b, number-of-parties sweep
//	expbench -exp headline          # Section VI-D NAIVE vs RTK headline
//	expbench -exp traffic           # server-relayed bytes, NAIVE vs RTK
//	expbench -exp latency           # per-stage protocol latency breakdown
//	expbench -exp ablation          # estimator + aggregator ablations
//	expbench -exp sse               # encryption-based comparator
//	expbench -exp parallelism       # worker-pool speedup sweep (not in "all")
//	expbench -exp chaos             # fault-rate availability sweep (not in "all")
//	expbench -exp cache             # answer-cache Zipf-repeat benchmark (not in "all")
//	expbench -exp load              # sharded gateway sustained-load benchmark (not in "all")
//	expbench -exp all               # everything
//
// -scale selects the workload size: "test" (seconds), "default"
// (minutes, the shape-faithful laptop scale) or "paper" for Fig. 4 /
// headline at the paper's document counts.
// -csv DIR additionally writes CSV series and Fig. 5 SVG panels;
// -json FILE writes one machine-readable report covering the run.
// -workers N,N,... selects the pool sizes of the parallelism sweep and
// -bench-json FILE writes the parallelism, chaos, cache or load sweep's
// machine-readable result — `make bench-json` uses this to refresh the
// checked-in BENCH_federation.json, BENCH_resilience.json,
// BENCH_cache.json and BENCH_load.json.
// -debug-addr HOST:PORT serves Prometheus /metrics, an expvar-style
// /debug/vars snapshot and /debug/pprof for the duration of the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"csfltr/internal/corpus"
	"csfltr/internal/experiments"
	"csfltr/internal/telemetry"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment to run (table1, fig4[-alpha|-beta|-k|-w|-z], fig5, fig6a, fig6b, headline, latency, trace, traffic, all)")
		scale     = flag.String("scale", "default", "workload scale: test, default or paper")
		csvDir    = flag.String("csv", "", "directory to write CSV series into (optional)")
		jsonOut   = flag.String("json", "", "file to write a machine-readable JSON report into (optional)")
		seed      = flag.Int64("seed", 1, "experiment seed")
		scatter   = flag.Bool("scatter", false, "print ASCII scatter plots for fig5 panels")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while experiments run (optional)")
		workers   = flag.String("workers", "", "comma-separated pool sizes for the parallelism sweep (default 1,2,4,8; must start at 1)")
		benchJSON = flag.String("bench-json", "", "file to write the parallelism sweep result into (optional)")
	)
	flag.Parse()
	if err := run(*exp, *scale, *csvDir, *jsonOut, *seed, *scatter, *debugAddr, *workers, *benchJSON); err != nil {
		fmt.Fprintln(os.Stderr, "expbench:", err)
		os.Exit(1)
	}
}

// configs returns the scale-adjusted configurations.
func configs(scale string, seed int64) (experiments.PipelineConfig, experiments.Fig4Config, experiments.Fig5Config, error) {
	var pipe experiments.PipelineConfig
	var fig4 experiments.Fig4Config
	var fig5 experiments.Fig5Config
	switch scale {
	case "test":
		pipe = experiments.TestPipelineConfig()
		fig4 = experiments.TestFig4Config()
		fig5 = experiments.TestFig5Config()
	case "default":
		pipe = experiments.DefaultPipelineConfig()
		// Parties C and D hold noisier labels, reproducing Table I's
		// data-quality divergence.
		pipe.Corpus.LabelNoise = []float64{0, 0, 0.6, 0.6}
		fig4 = experiments.DefaultFig4Config()
		fig5 = experiments.DefaultFig5Config()
	case "paper":
		pipe = experiments.DefaultPipelineConfig()
		pipe.Corpus.LabelNoise = []float64{0, 0, 0.6, 0.6}
		fig4 = experiments.DefaultFig4Config()
		fig4.Docs = 36400 // the paper's per-party document count
		fig4.DocLen = 1000
		fig4.NaiveTerms = 1
		fig5 = experiments.DefaultFig5Config()
	default:
		return pipe, fig4, fig5, fmt.Errorf("unknown scale %q", scale)
	}
	pipe.Seed = seed
	fig4.Seed = seed
	fig5.Seed = seed
	pipe.Corpus.Seed = seed
	fig5.Corpus.Seed = seed
	return pipe, fig4, fig5, nil
}

func run(exp, scale, csvDir, jsonOut string, seed int64, scatter bool, debugAddr, workers, benchJSON string) error {
	pipe, fig4, fig5, err := configs(scale, seed)
	if err != nil {
		return err
	}
	// One shared registry: every pipeline's federation records into it, so
	// the debug endpoint sees the whole run's relay and latency series.
	reg := telemetry.NewRegistry()
	pipe.Metrics = reg
	if debugAddr != "" {
		ds, err := telemetry.ServeDebug(reg, debugAddr)
		if err != nil {
			return err
		}
		defer ds.Close()
		fmt.Printf("debug endpoint on http://%s (/metrics, /debug/vars, /debug/pprof)\n", ds.Addr)
	}
	report := experiments.NewReport(map[string]string{
		"scale": scale,
		"seed":  fmt.Sprint(seed),
	})
	runners := map[string]func() error{
		"table1": func() error { return runTable1(pipe, report) },
		"fig5":   func() error { return runFig5(fig5, csvDir, scatter, report) },
		"fig6a":  func() error { return runFig6a(pipe, report) },
		"fig6b":  func() error { return runFig6b(pipe, report) },
		"headline": func() error {
			res, err := experiments.RunHeadline(fig4)
			if err != nil {
				return err
			}
			fmt.Println("== Headline (Section VI-D): NAIVE vs RTK ==")
			fmt.Print(experiments.RenderHeadline(res))
			report.Add("headline", res)
			return nil
		},
		"ablation": func() error {
			fmt.Println("== Ablation: RTK candidate estimator (zero-fill vs paper-literal) ==")
			for _, param := range []string{"alpha", "beta"} {
				ab, err := experiments.RunEstimatorAblation(fig4, param, experiments.PaperFig4Sweeps()[param])
				if err != nil {
					return err
				}
				fmt.Print(experiments.RenderEstimatorAblation(ab))
				fmt.Println()
				report.Add("ablation-estimator-"+param, ab)
			}
			fmt.Println("== Ablation: federated aggregation strategy ==")
			p, err := experiments.NewPipeline(pipe)
			if err != nil {
				return err
			}
			agg, err := experiments.RunAggregatorAblation(p)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderAggregatorAblation(agg))
			report.Add("ablation-aggregator", agg)
			return nil
		},
		"sse": func() error {
			cfg := fig4
			if cfg.Docs > 8000 {
				cfg.Docs = 8000
			}
			res, err := experiments.RunSSEComparison(cfg)
			if err != nil {
				return err
			}
			fmt.Println("== Comparator: searchable symmetric encryption vs sketches ==")
			fmt.Print(experiments.RenderSSEComparison(res))
			report.Add("sse", res)
			return nil
		},
		"latency": func() error {
			cfg := pipe
			cfg.Params.Epsilon = 1 // exercise the dp_noise stage
			cfg.Metrics = telemetry.NewRegistry()
			p, err := experiments.NewPipeline(cfg)
			if err != nil {
				return err
			}
			res, err := experiments.RunLatencyProbe(p)
			if err != nil {
				return err
			}
			fmt.Println("== Protocol stage latency (registry-sourced) ==")
			fmt.Printf("%d federated searches, %d messages, %.1f KB relayed\n",
				res.Searches, res.Traffic.Messages, float64(res.Traffic.Bytes)/1024)
			fmt.Print(experiments.RenderStageBreakdown(res.Stages))
			report.Add("latency", res)
			return nil
		},
		"parallelism": func() error {
			cfg := experiments.DefaultParallelismConfig()
			if scale == "test" {
				cfg = experiments.TestParallelismConfig()
			}
			cfg.Seed = seed
			if workers != "" {
				ws, err := parseWorkers(workers)
				if err != nil {
					return err
				}
				cfg.Workers = ws
			}
			res, err := experiments.RunParallelismSweep(cfg)
			if err != nil {
				return err
			}
			fmt.Println("== Parallelism: federated search fan-out and bulk ingestion ==")
			fmt.Print(experiments.RenderParallelism(res))
			report.Add("parallelism", res)
			if benchJSON != "" {
				f, err := os.Create(benchJSON)
				if err != nil {
					return err
				}
				defer f.Close()
				if err := experiments.WriteParallelismJSON(f, res); err != nil {
					return err
				}
				fmt.Println("wrote", benchJSON)
			}
			return nil
		},
		"chaos": func() error {
			cfg := experiments.DefaultChaosConfig()
			if scale == "test" {
				cfg = experiments.TestChaosConfig()
			}
			cfg.Seed = seed
			res, err := experiments.RunChaosSweep(cfg)
			if err != nil {
				return err
			}
			fmt.Println("== Chaos: degraded-mode search availability vs fault rate ==")
			fmt.Print(experiments.RenderChaos(res))
			report.Add("chaos", res)
			if benchJSON != "" {
				f, err := os.Create(benchJSON)
				if err != nil {
					return err
				}
				defer f.Close()
				if err := experiments.WriteBenchJSON(f, res); err != nil {
					return err
				}
				fmt.Println("wrote", benchJSON)
			}
			return nil
		},
		"cache": func() error {
			cfg := experiments.DefaultCacheConfig()
			if scale == "test" {
				cfg = experiments.TestCacheConfig()
			}
			cfg.Seed = seed
			res, err := experiments.RunCacheSweep(cfg)
			if err != nil {
				return err
			}
			fmt.Println("== Answer cache: Zipf-repeat search stream, cache off vs on ==")
			fmt.Print(experiments.RenderCache(res))
			report.Add("cache", res)
			if benchJSON != "" {
				f, err := os.Create(benchJSON)
				if err != nil {
					return err
				}
				defer f.Close()
				if err := experiments.WriteBenchJSON(f, res); err != nil {
					return err
				}
				fmt.Println("wrote", benchJSON)
			}
			return nil
		},
		"trace": func() error {
			cfg := experiments.DefaultTraceConfig()
			if scale == "test" {
				cfg = experiments.TestTraceConfig()
			}
			cfg.Seed = seed
			res, err := experiments.RunTraceOverhead(cfg)
			if err != nil {
				return err
			}
			fmt.Println("== Tracing: flight-recorder overhead, identical workload off vs on ==")
			fmt.Print(experiments.RenderTrace(res))
			report.Add("trace", res)
			if benchJSON != "" {
				f, err := os.Create(benchJSON)
				if err != nil {
					return err
				}
				defer f.Close()
				if err := experiments.WriteBenchJSON(f, res); err != nil {
					return err
				}
				fmt.Println("wrote", benchJSON)
			}
			return nil
		},
		"load": func() error {
			cfg := experiments.DefaultLoadConfig()
			if scale == "test" {
				cfg = experiments.TestLoadConfig()
			}
			cfg.Seed = seed
			res, err := experiments.RunLoadSweep(cfg)
			if err != nil {
				return err
			}
			fmt.Println("== Load: sharded gateway serving at sustained open-loop QPS ==")
			fmt.Print(experiments.RenderLoad(res))
			report.Add("load", res)
			if benchJSON != "" {
				f, err := os.Create(benchJSON)
				if err != nil {
					return err
				}
				defer f.Close()
				if err := experiments.WriteBenchJSON(f, res); err != nil {
					return err
				}
				fmt.Println("wrote", benchJSON)
			}
			return nil
		},
		"secagg": func() error {
			cfg := experiments.DefaultSecAggConfig()
			if scale == "test" {
				cfg = experiments.TestSecAggConfig()
			}
			cfg.Seed = seed
			res, err := experiments.RunSecAggSweep(cfg)
			if err != nil {
				return err
			}
			fmt.Println("== SecAgg: masked secure aggregation vs plaintext round-robin ==")
			fmt.Print(experiments.RenderSecAgg(res))
			report.Add("secagg", res)
			if benchJSON != "" {
				f, err := os.Create(benchJSON)
				if err != nil {
					return err
				}
				defer f.Close()
				if err := experiments.WriteBenchJSON(f, res); err != nil {
					return err
				}
				fmt.Println("wrote", benchJSON)
			}
			return nil
		},
		"traffic": func() error {
			cfg := fig4
			if cfg.Docs > 4000 {
				cfg.Docs = 4000 // traffic shape saturates; keep it quick
			}
			res, err := experiments.RunTrafficComparison(cfg)
			if err != nil {
				return err
			}
			fmt.Println("== Server-relayed traffic for one reverse top-K ==")
			fmt.Printf("NAIVE: %d messages, %.1f KB\n", res.NaiveTraffic.Messages, float64(res.NaiveTraffic.Bytes)/1024)
			fmt.Printf("RTK:   %d messages, %.1f KB\n", res.RTKTraffic.Messages, float64(res.RTKTraffic.Bytes)/1024)
			report.Add("traffic", res)
			return nil
		},
	}
	for _, p := range []string{"alpha", "beta", "k", "w", "z"} {
		p := p
		runners["fig4-"+p] = func() error { return runFig4(fig4, p, csvDir, report) }
	}
	runners["fig4"] = func() error {
		for _, p := range []string{"alpha", "beta", "k", "w", "z"} {
			if err := runFig4(fig4, p, csvDir, report); err != nil {
				return err
			}
		}
		return nil
	}

	writeReport := func() error {
		if jsonOut == "" || report.Len() == 0 {
			return nil
		}
		f, err := os.Create(jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := report.WriteJSON(f); err != nil {
			return err
		}
		fmt.Println("wrote", jsonOut)
		return nil
	}

	if exp == "all" {
		names := make([]string, 0, len(runners))
		for n := range runners {
			if strings.HasPrefix(n, "fig4-") {
				continue // covered by "fig4"
			}
			if n == "parallelism" || n == "chaos" || n == "cache" || n == "trace" || n == "load" || n == "secagg" {
				continue // timing benchmarks, not paper figures; run explicitly
			}
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if err := runners[n](); err != nil {
				return fmt.Errorf("%s: %w", n, err)
			}
			fmt.Println()
		}
		return writeReport()
	}
	r, ok := runners[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	if err := r(); err != nil {
		return err
	}
	return writeReport()
}

// parseWorkers parses the -workers flag ("1,2,4,8").
func parseWorkers(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad -workers value %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func runTable1(pipe experiments.PipelineConfig, report *experiments.Report) error {
	fmt.Println("== Table I: LTR model performance ==")
	p, err := experiments.NewPipeline(pipe)
	if err != nil {
		return err
	}
	res, err := experiments.RunTable1(p)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderTable1(res))
	report.Add("table1", res)
	return nil
}

func runFig4(cfg experiments.Fig4Config, param string, csvDir string, report *experiments.Report) error {
	fmt.Printf("== Fig. 4: impact of %s (docs=%d) ==\n", param, cfg.Docs)
	points, err := experiments.RunFig4Sweep(cfg, param, experiments.PaperFig4Sweeps()[param])
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderFig4(points))
	report.Add("fig4-"+param, points)
	if csvDir != "" {
		path := filepath.Join(csvDir, "fig4-"+param+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := experiments.WriteFig4CSV(f, points); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	return nil
}

func runFig5(cfg experiments.Fig5Config, csvDir string, scatter bool, report *experiments.Report) error {
	fmt.Println("== Fig. 5: sketch strategy separability ==")
	panels, err := experiments.RunFig5(cfg, experiments.PaperFig5Strategies())
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderFig5(panels))
	probes := make(map[string]any, len(panels))
	for _, p := range panels {
		probes[p.Strategy.Name] = p.Probes
	}
	report.Add("fig5-probes", probes)
	if scatter {
		for _, p := range panels {
			fmt.Printf("\n[%s] (o = relevant, . = irrelevant, 8 = overlap)\n", p.Strategy.Name)
			fmt.Print(experiments.Scatter(p.Points, p.Labels, 72, 20))
		}
	}
	if csvDir != "" {
		for _, p := range panels {
			path := filepath.Join(csvDir, "fig5-"+p.Strategy.Name+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := experiments.WriteFig5PointsCSV(f, p); err != nil {
				_ = f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Println("wrote", path)

			svgPath := filepath.Join(csvDir, "fig5-"+p.Strategy.Name+".svg")
			sf, err := os.Create(svgPath)
			if err != nil {
				return err
			}
			if err := experiments.WriteFig5SVG(sf, p, 360, 300); err != nil {
				_ = sf.Close()
				return err
			}
			if err := sf.Close(); err != nil {
				return err
			}
			fmt.Println("wrote", svgPath)
		}
	}
	return nil
}

func runFig6a(pipe experiments.PipelineConfig, report *experiments.Report) error {
	fmt.Println("== Fig. 6a: impact of privacy budget ==")
	points, err := experiments.RunFig6a(pipe, []float64{0, 0.5, 1, 2, 4, 8})
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderFig6a(points))
	report.Add("fig6a", points)
	return nil
}

func runFig6b(pipe experiments.PipelineConfig, report *experiments.Report) error {
	fmt.Println("== Fig. 6b: impact of number of parties ==")
	cfg := pipe
	cfg.Corpus = resizeForParties(cfg.Corpus)
	points, err := experiments.RunFig6b(cfg, []int{1, 2, 3, 4, 5})
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderFig6b(points))
	report.Add("fig6b", points)
	return nil
}

// resizeForParties keeps the per-party sizes constant across the Fig. 6b
// sweep (the paper adds parties, it does not re-slice a fixed pie).
func resizeForParties(c corpus.Config) corpus.Config { return c }
