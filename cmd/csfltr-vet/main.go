// Command csfltr-vet runs the project's static-analysis suite (see
// internal/analysis): interprocedural privacy-boundary taint for
// //csfltr:private data, lock-copy and lock-hold concurrency hygiene,
// determinism and budget-flow contracts, nondeterministic map-iteration
// output, dropped errors, and unbounded metric-label cardinality.
//
// Usage:
//
//	csfltr-vet [-list] [-json] [-annotate] [-root dir] [packages]
//
// packages are Go package patterns relative to the module root
// (default "./..."). The exit status is 1 when any diagnostic is
// reported, 2 on operational errors, 0 otherwise — so it slots into CI
// next to go vet. Suppress an intentional finding at its line with
//
//	//csfltr:allow <analyzer> -- <justification>
//
// (the justification is mandatory; a bare allow is itself a finding).
//
// -json emits one JSON object per finding (file/line/col/analyzer/
// message/chain) for tooling; -annotate emits GitHub Actions
// `::error file=...` workflow commands so findings surface inline on
// pull requests. The two can be combined: annotations go to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"csfltr/internal/analysis"
)

// jsonDiagnostic is the stable -json wire shape of one finding.
type jsonDiagnostic struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	Chain    []string `json:"chain,omitempty"`
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	root := flag.String("root", "", "module root (default: nearest go.mod above the working directory)")
	jsonOut := flag.Bool("json", false, "emit findings as JSON Lines on stdout")
	annotate := flag.Bool("annotate", false, "emit GitHub Actions ::error annotations on stderr")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	dir := *root
	if dir == "" {
		cwd, err := os.Getwd()
		if err != nil {
			fatal(err)
		}
		dir, err = analysis.FindModuleRoot(cwd)
		if err != nil {
			fatal(err)
		}
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	diags, err := analysis.Run(dir, patterns, analysis.All())
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		switch {
		case *jsonOut:
			if err := enc.Encode(jsonDiagnostic{
				File:     relToRoot(dir, d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
				Chain:    d.Chain,
			}); err != nil {
				fatal(err)
			}
		default:
			fmt.Println(d)
		}
		if *annotate {
			fmt.Fprintf(os.Stderr, "::error file=%s,line=%d,col=%d,title=csfltr-vet %s::%s\n",
				relToRoot(dir, d.Pos.Filename), d.Pos.Line, d.Pos.Column,
				d.Analyzer, escapeAnnotation(d.Message))
		}
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(os.Stderr, "csfltr-vet: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// relToRoot makes filenames repo-relative so GitHub can anchor the
// annotation to the diff; absolute paths outside root pass through.
func relToRoot(root, file string) string {
	if rest, ok := strings.CutPrefix(file, root+string(os.PathSeparator)); ok {
		return rest
	}
	return file
}

// escapeAnnotation encodes the characters GitHub workflow commands
// reserve in message data.
func escapeAnnotation(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "csfltr-vet:", err)
	os.Exit(2)
}
