// Command csfltr-vet runs the project's static-analysis suite (see
// internal/analysis): privacy-boundary flow checks for //csfltr:private
// data, nondeterministic map-iteration output, dropped errors, and
// unbounded metric-label cardinality.
//
// Usage:
//
//	csfltr-vet [-list] [-root dir] [packages]
//
// packages are Go package patterns relative to the module root
// (default "./..."). The exit status is 1 when any diagnostic is
// reported, 2 on operational errors, 0 otherwise — so it slots into CI
// next to go vet. Suppress an intentional finding at its line with
//
//	//csfltr:allow <analyzer> -- <justification>
package main

import (
	"flag"
	"fmt"
	"os"

	"csfltr/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	root := flag.String("root", "", "module root (default: nearest go.mod above the working directory)")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	dir := *root
	if dir == "" {
		cwd, err := os.Getwd()
		if err != nil {
			fatal(err)
		}
		dir, err = analysis.FindModuleRoot(cwd)
		if err != nil {
			fatal(err)
		}
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	diags, err := analysis.Run(dir, patterns, analysis.All())
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(os.Stderr, "csfltr-vet: %d finding(s)\n", n)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "csfltr-vet:", err)
	os.Exit(2)
}
