package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"csfltr/internal/federation"
	"csfltr/internal/telemetry"
)

// traceCmd inspects a serving federation's flight recorder over the
// HTTP gateway: without -id it lists the audit ledger (one line per
// federated query); with -id it dumps that query's span tree, and with
// -chrome additionally writes the tree as Chrome trace-event JSON for
// chrome://tracing / Perfetto.
func traceCmd(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	gw := fs.String("http", "127.0.0.1:7080", "HTTP gateway address (see 'csfltr serve -http')")
	id := fs.String("id", "", "trace id to dump (omit to list the audit ledger)")
	chrome := fs.String("chrome", "", "also write the dumped trace as Chrome trace-event JSON to this file")
	_ = fs.Parse(args) // ExitOnError: Parse exits instead of returning
	base := "http://" + *gw
	if *id == "" {
		return traceList(base)
	}
	return traceDump(base, *id, *chrome)
}

// getJSON fetches one gateway route into out.
func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s (is the server running with -trace?)", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// traceList prints the audit ledger, newest last.
func traceList(base string) error {
	var body struct {
		Records []federation.AuditRecord `json:"records"`
	}
	if err := getJSON(base+"/v1/audit", &body); err != nil {
		return err
	}
	if len(body.Records) == 0 {
		fmt.Println("audit ledger is empty — run a federated search first")
		return nil
	}
	fmt.Printf("%-16s %-7s %-8s %6s %-14s %8s %10s %8s\n",
		"trace", "op", "querier", "terms", "outcome", "epsilon", "bytes", "ms")
	for _, r := range body.Records {
		fmt.Printf("%-16s %-7s %-8s %6d %-14s %8.2f %10d %8.1f\n",
			r.TraceID, r.Op, r.Querier, r.Terms, r.Outcome, r.EpsilonSpent,
			r.Bytes, float64(r.DurationNanos)/1e6)
	}
	fmt.Printf("%d records; dump one with: csfltr trace -http %s -id TRACE\n",
		len(body.Records), strings.TrimPrefix(base, "http://"))
	return nil
}

// traceDump prints one trace's span tree and audit summary.
func traceDump(base, id, chromePath string) error {
	var body struct {
		TraceID string                  `json:"trace_id"`
		Spans   []telemetry.SpanRecord  `json:"spans"`
		Audit   *federation.AuditRecord `json:"audit"`
	}
	if err := getJSON(base+"/v1/trace/"+id, &body); err != nil {
		return err
	}
	fmt.Printf("trace %s: %d spans\n", body.TraceID, len(body.Spans))
	printSpanTree(body.Spans)
	if a := body.Audit; a != nil {
		fmt.Printf("audit: op=%s querier=%s terms=%d outcome=%s epsilon=%.2f bytes=%d (%0.1f ms)\n",
			a.Op, a.Querier, a.Terms, a.Outcome, a.EpsilonSpent, a.Bytes,
			float64(a.DurationNanos)/1e6)
		for _, p := range a.Parties {
			fmt.Printf("  party %-8s %-10s %-9s queries=%d cached=%d retries=%d epsilon=%.2f\n",
				p.Party, p.Transport, p.Outcome, p.Queries, p.Cached, p.Retries, p.Epsilon)
		}
	}
	if chromePath != "" {
		f, err := os.Create(chromePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := telemetry.WriteChromeTrace(f, body.Spans); err != nil {
			return err
		}
		fmt.Println("wrote", chromePath, "— open in chrome://tracing or ui.perfetto.dev")
	}
	return nil
}

// printSpanTree renders spans as an indented tree, children ordered by
// start time. Spans whose parent is missing (evicted or remote) root at
// the top level.
func printSpanTree(spans []telemetry.SpanRecord) {
	byID := make(map[string]bool, len(spans))
	for _, s := range spans {
		byID[s.SpanID] = true
	}
	children := make(map[string][]telemetry.SpanRecord)
	for _, s := range spans {
		parent := s.ParentID
		if !byID[parent] {
			parent = "" // orphan: promote to root
		}
		children[parent] = append(children[parent], s)
	}
	for _, kids := range children {
		sort.Slice(kids, func(i, j int) bool {
			return kids[i].StartUnixNano < kids[j].StartUnixNano
		})
	}
	var walk func(parent, indent string)
	walk = func(parent, indent string) {
		for _, s := range children[parent] {
			fmt.Printf("%s%s (%s)%s\n", indent, s.Name,
				time.Duration(s.DurationNanos), renderAttrs(s.Attrs))
			walk(s.SpanID, indent+"  ")
		}
	}
	walk("", "  ")
}

// renderAttrs renders span attributes as a compact suffix.
func renderAttrs(attrs []telemetry.Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = a.Key + "=" + a.Value
	}
	return " [" + strings.Join(parts, " ") + "]"
}
