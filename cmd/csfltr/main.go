// Command csfltr is the pipeline driver of the CS-F-LTR reproduction.
//
//	csfltr demo                 # end-to-end simulation, Table-I output
//	csfltr serve -addr :7070    # host a federation server over net/rpc
//	csfltr query -addr HOST:PORT -party B -term 12345 -k 10
//
// serve generates the synthetic corpus, ingests every party's documents
// into their sketches and exports the coordinating server over TCP;
// query dials it and runs a reverse top-K document query (Algorithm 5)
// as a remote querier.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"

	"csfltr/internal/core"
	"csfltr/internal/corpus"
	"csfltr/internal/experiments"
	"csfltr/internal/federation"
	"csfltr/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "demo":
		err = demo(os.Args[2:])
	case "serve":
		err = serve(os.Args[2:])
	case "query":
		err = query(os.Args[2:])
	case "party":
		err = partyCmd(os.Args[2:])
	case "train":
		err = train(os.Args[2:])
	case "eval":
		err = evalCmd(os.Args[2:])
	case "trace":
		err = traceCmd(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "csfltr:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  csfltr demo  [-scale test|default] [-seed N]
  csfltr serve [-addr HOST:PORT] [-scale test|default] [-seed N] [-http HOST:PORT] [-debug-addr HOST:PORT] [-trace]
  csfltr query -addr HOST:PORT [-party NAME] [-term ID] [-k N] [-naive] [-scale test|default]
  csfltr party -name NAME [-addr HOST:PORT] [-scale test|default] [-seed N] [-debug-addr HOST:PORT]
  csfltr train [-scale test|default] [-seed N] -model FILE
  csfltr eval  [-scale test|default] [-seed N] -model FILE
  csfltr trace [-http HOST:PORT] [-id TRACE] [-chrome FILE]`)
}

// scaleConfigs maps a -scale flag to the corpus and protocol parameters
// the networked subcommands share. serve, party and query must agree on
// both for their sketches to line up.
func scaleConfigs(scale string, seed int64) (corpus.Config, core.Params, error) {
	ccfg := corpus.DefaultConfig()
	params := core.DefaultParams()
	switch scale {
	case "default":
	case "test":
		ccfg = corpus.TestConfig()
		params.W = 128
		params.Z = 12
		params.Z1 = 6
		params.K = 20
	default:
		return ccfg, params, fmt.Errorf("unknown scale %q", scale)
	}
	ccfg.Seed = seed
	return ccfg, params, nil
}

// startDebug serves /metrics, /debug/vars and /debug/pprof on addr when
// non-empty and returns a closer (no-op when disabled).
func startDebug(reg *telemetry.Registry, addr string) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	ds, err := telemetry.ServeDebug(reg, addr)
	if err != nil {
		return nil, err
	}
	fmt.Printf("debug endpoint on http://%s (/metrics, /debug/vars, /debug/pprof)\n", ds.Addr)
	return func() { _ = ds.Close() }, nil
}

// partyCmd hosts one party in its own process (the fully distributed
// topology): it generates that party's slice of the shared synthetic
// corpus, ingests it and serves the owner endpoints over TCP. A
// coordinator registers it with Server.RegisterRemote.
func partyCmd(args []string) error {
	fs := flag.NewFlagSet("party", flag.ExitOnError)
	name := fs.String("name", "B", "party name (A, B, C, D selects the corpus slice)")
	addr := fs.String("addr", "127.0.0.1:7071", "listen address")
	scale := fs.String("scale", "default", "test or default (must match the federation's)")
	seed := fs.Int64("seed", 1, "corpus seed (must match the federation's)")
	debugAddr := fs.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (optional)")
	_ = fs.Parse(args) // ExitOnError: Parse exits instead of returning
	idx := int((*name)[0] - 'A')
	cfg, params, err := scaleConfigs(*scale, *seed)
	if err != nil {
		return err
	}
	if idx < 0 || idx >= cfg.NumParties || len(*name) != 1 {
		return fmt.Errorf("party name must be one of A..%c", 'A'+cfg.NumParties-1)
	}
	fmt.Println("generating corpus slice for party", *name, "...")
	c, err := corpus.Generate(cfg)
	if err != nil {
		return err
	}
	p, err := federation.NewParty(*name, federation.PartyConfig{
		Params:  params,
		Seed:    demoSeed,
		RNGSeed: *seed + int64(idx)*1000,
	})
	if err != nil {
		return err
	}
	if err := p.IngestAll(c.Parties[idx].Docs); err != nil {
		return err
	}
	// Inlined ServeParty so the party-local server's registry is
	// reachable for the debug endpoint.
	local := federation.NewServer()
	if err := local.Register(p); err != nil {
		return err
	}
	host, err := federation.ListenAndServe(local, *addr)
	if err != nil {
		return err
	}
	defer host.Close()
	stopDebug, err := startDebug(local.Metrics(), *debugAddr)
	if err != nil {
		return err
	}
	defer stopDebug()
	fmt.Printf("party %s hosting %d documents on %s (Ctrl-C to stop)\n",
		*name, p.NumDocs(), host.Addr)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	return nil
}

// pipelineConfig builds the simulation configuration for train/eval/demo.
func pipelineConfig(scale string, seed int64) (experiments.PipelineConfig, error) {
	cfg := experiments.DefaultPipelineConfig()
	switch scale {
	case "default":
	case "test":
		cfg = experiments.TestPipelineConfig()
	default:
		return cfg, fmt.Errorf("unknown scale %q", scale)
	}
	cfg.Seed = seed
	cfg.Corpus.Seed = seed
	cfg.Corpus.LabelNoise = []float64{0, 0, 0.6, 0.6}
	return cfg, nil
}

func train(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	scale := fs.String("scale", "default", "test or default")
	seed := fs.Int64("seed", 1, "simulation seed")
	modelPath := fs.String("model", "csfltr-model.bin", "output model file")
	_ = fs.Parse(args) // ExitOnError: Parse exits instead of returning
	cfg, err := pipelineConfig(*scale, *seed)
	if err != nil {
		return err
	}
	fmt.Println("building federation and augmenting data...")
	p, err := experiments.NewPipeline(cfg)
	if err != nil {
		return err
	}
	trained, err := experiments.TrainCSFLTR(p)
	if err != nil {
		return err
	}
	f, err := os.Create(*modelPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := trained.WriteTo(f); err != nil {
		return err
	}
	fmt.Printf("trained CS-F-LTR model saved to %s\n", *modelPath)
	fmt.Printf("test metrics: ERR=%.3f nDCG@10=%.3f nDCG=%.3f\n",
		trained.TestMetrics.ERR, trained.TestMetrics.NDCG10, trained.TestMetrics.NDCG)
	return nil
}

func evalCmd(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	scale := fs.String("scale", "default", "test or default")
	seed := fs.Int64("seed", 1, "corpus seed to evaluate against")
	modelPath := fs.String("model", "csfltr-model.bin", "model file to load")
	_ = fs.Parse(args) // ExitOnError: Parse exits instead of returning
	cfg, err := pipelineConfig(*scale, *seed)
	if err != nil {
		return err
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	defer f.Close()
	trained, err := experiments.ReadTrainedModel(f)
	if err != nil {
		return err
	}
	fmt.Println("generating evaluation corpus...")
	p, err := experiments.NewPipeline(cfg)
	if err != nil {
		return err
	}
	m := experiments.EvaluateTrained(trained, p)
	fmt.Printf("metrics on seed %d test set: ERR=%.3f nDCG@10=%.3f nDCG=%.3f\n",
		*seed, m.ERR, m.NDCG10, m.NDCG)
	return nil
}

func demo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	scale := fs.String("scale", "default", "test or default")
	seed := fs.Int64("seed", 1, "simulation seed")
	_ = fs.Parse(args) // ExitOnError: Parse exits instead of returning
	cfg := experiments.DefaultPipelineConfig()
	if *scale == "test" {
		cfg = experiments.TestPipelineConfig()
	}
	cfg.Seed = *seed
	cfg.Corpus.Seed = *seed
	cfg.Corpus.LabelNoise = []float64{0, 0, 0.6, 0.6}
	fmt.Println("running CS-F-LTR end-to-end simulation...")
	p, err := experiments.NewPipeline(cfg)
	if err != nil {
		return err
	}
	res, err := experiments.RunTable1(p)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderTable1(res))
	return nil
}

// demoSeed is the fixed hash seed serve and query agree on out of band;
// a deployed federation derives it with the Diffie-Hellman ceremony
// instead (see package keyex).
const demoSeed = 0xC5F17A

// remoteFlags collects repeated -remote NAME=ADDR flags.
type remoteFlags []string

func (r *remoteFlags) String() string { return strings.Join(*r, ",") }
func (r *remoteFlags) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want NAME=ADDR, got %q", v)
	}
	*r = append(*r, v)
	return nil
}

func serve(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "net/rpc listen address")
	scale := fs.String("scale", "default", "test or default")
	seed := fs.Int64("seed", 1, "corpus seed")
	httpAddr := fs.String("http", "", "also serve the HTTP gateway (REST API + GET /v1/metrics) on this address (optional)")
	debugAddr := fs.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (optional)")
	trace := fs.Bool("trace", false, "enable the distributed-tracing flight recorder and run demo searches (inspect with 'csfltr trace')")
	shards := fs.Int("shards", 0, "partition each local party's corpus across this many owner shards (0/1 = single owner)")
	replicas := fs.Int("replicas", 0, "read replicas per shard (0 = 1; >= 2 enables failover)")
	var remotes remoteFlags
	fs.Var(&remotes, "remote", "party-hosted silo to relay to, NAME=ADDR (repeatable; see 'csfltr party')")
	_ = fs.Parse(args) // ExitOnError: Parse exits instead of returning

	cfg, params, err := scaleConfigs(*scale, *seed)
	if err != nil {
		return err
	}
	params.Shards = *shards
	params.Replicas = *replicas
	fmt.Println("generating corpus...")
	c, err := corpus.Generate(cfg)
	if err != nil {
		return err
	}
	remoteNames := map[string]string{}
	for _, spec := range remotes {
		name, raddr, _ := strings.Cut(spec, "=")
		remoteNames[name] = raddr
	}
	server := federation.NewServer()
	if *trace {
		server.EnableTracing(federation.TraceConfig{EventCapacity: 256})
	}
	var locals []*federation.Party
	for i := 0; i < cfg.NumParties; i++ {
		name := string(rune('A' + i))
		if raddr, remote := remoteNames[name]; remote {
			client, err := server.RegisterRemote(name, raddr)
			if err != nil {
				return fmt.Errorf("registering remote %s=%s: %w", name, raddr, err)
			}
			defer client.Close()
			fmt.Printf("party %s relayed from %s\n", name, raddr)
			continue
		}
		party, err := federation.NewParty(name, federation.PartyConfig{
			Params:  params,
			Seed:    demoSeed,
			RNGSeed: *seed + int64(i)*1000,
		})
		if err != nil {
			return err
		}
		fmt.Printf("ingesting %d documents for party %s...\n", len(c.Parties[i].Docs), name)
		if err := party.IngestAll(c.Parties[i].Docs); err != nil {
			return err
		}
		if err := server.Register(party); err != nil {
			return err
		}
		locals = append(locals, party)
	}
	var fed *federation.Federation
	if len(locals) == cfg.NumParties {
		// All parties in-process: attach the federated search entry
		// point so the gateway serves POST /v1/search, with admission
		// control bounding concurrent fan-outs.
		fed = federation.Assemble(server, locals, params, demoSeed)
		server.SetAdmission(federation.AdmissionConfig{})
	}
	srv, err := federation.ListenAndServe(server, *addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Println("serving federation on", srv.Addr)
	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: federation.HTTPHandler(server)}
		go func() {
			if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "http gateway:", err)
			}
		}()
		defer hs.Close()
		fmt.Printf("HTTP gateway on http://%s (try GET /v1/metrics)\n", ln.Addr())
	}
	stopDebug, err := startDebug(server.Metrics(), *debugAddr)
	if err != nil {
		return err
	}
	defer stopDebug()
	fmt.Println("sample query terms (salient topic terms):")
	for t := 0; t < 3 && t < len(c.Topics()); t++ {
		fmt.Printf("  topic %d: %v\n", t, c.Topics()[t][:5])
	}
	if *trace && len(locals) >= 2 {
		// Seed the flight recorder so `csfltr trace` (and the /v1/trace,
		// /v1/audit routes) have something to show: one federated search
		// per sampled topic, issued by the first local party.
		if fed == nil {
			fed = federation.Assemble(server, locals, params, demoSeed)
		}
		for t := 0; t < 3 && t < len(c.Topics()); t++ {
			topic := c.Topics()[t]
			terms := make([]uint64, 0, 3)
			for _, id := range topic[:min(3, len(topic))] {
				terms = append(terms, uint64(id))
			}
			res, traceID, err := fed.SearchTraced(locals[0].Name, terms, params.K)
			if err != nil {
				return fmt.Errorf("trace demo search (topic %d): %w", t, err)
			}
			fmt.Printf("traced demo search: topic %d -> %d hits, trace %s\n",
				t, len(res.Hits), traceID)
		}
		fmt.Printf("inspect with: csfltr trace -http %s [-id TRACE]\n", *httpAddr)
	}
	fmt.Println("press Ctrl-C to stop")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	return nil
}

func query(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "server address")
	party := fs.String("party", "B", "document-owner party to query")
	term := fs.Uint64("term", 0, "term id to search for")
	k := fs.Int("k", 10, "result count")
	naive := fs.Bool("naive", false, "use the NAIVE algorithm instead of RTK")
	scale := fs.String("scale", "default", "test or default (must match the server's)")
	_ = fs.Parse(args) // ExitOnError: Parse exits instead of returning

	_, params, err := scaleConfigs(*scale, 1)
	if err != nil {
		return err
	}
	client, err := federation.Dial(*addr)
	if err != nil {
		return err
	}
	defer client.Close()
	querier, err := core.NewQuerier(params, demoSeed, rand.New(rand.NewSource(99)))
	if err != nil {
		return err
	}
	remote := client.OwnerFor(*party, federation.FieldBody)
	var (
		results []core.DocCount
		cost    core.Cost
	)
	if *naive {
		results, cost, err = core.NaiveReverseTopK(querier, remote, *term, *k)
	} else {
		results, cost, err = core.RTKReverseTopK(querier, remote, *term, *k)
	}
	if err != nil {
		return err
	}
	algo := "RTK"
	if *naive {
		algo = "NAIVE"
	}
	fmt.Printf("%s reverse top-%d for term %d at party %s (%d msgs, %d B down):\n",
		algo, *k, *term, *party, cost.Messages, cost.BytesReceived)
	for i, dc := range results {
		fmt.Printf("  %2d. doc %-6d est. count %.1f\n", i+1, dc.DocID, dc.Count)
	}
	if len(results) == 0 {
		fmt.Println("  (no documents matched)")
	}
	return nil
}
