// Command datagen generates the synthetic MS MARCO-style corpus used by
// the CS-F-LTR reproduction and reports its statistics (sizes, Zipf fit,
// cross-party relevance structure). With -out it also dumps the raw
// documents and queries as TSV for external inspection.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"csfltr/internal/corpus"
	"csfltr/internal/textkit"
	"csfltr/internal/zipf"
)

func main() {
	var (
		scale = flag.String("scale", "default", "test, default or paper")
		seed  = flag.Int64("seed", 1, "corpus seed")
		out   = flag.String("out", "", "directory to dump TSV files into (optional)")
	)
	flag.Parse()
	if err := run(*scale, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(scale string, seed int64, out string) error {
	var cfg corpus.Config
	switch scale {
	case "test":
		cfg = corpus.TestConfig()
	case "default":
		cfg = corpus.DefaultConfig()
	case "paper":
		cfg = corpus.PaperConfig()
	default:
		return fmt.Errorf("unknown scale %q", scale)
	}
	cfg.Seed = seed
	fmt.Printf("generating corpus (%d parties x %d docs x %d terms, %d queries/party)...\n",
		cfg.NumParties, cfg.DocsPerParty, cfg.DocLen, cfg.QueriesPerParty)
	c, err := corpus.Generate(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("documents: %d, queries: %d, avg doc len: %.1f\n",
		c.TotalDocs(), c.TotalQueries(), c.AverageDocLen())

	// Zipf fit over party 0's aggregate term counts.
	counts := make(map[textkit.TermID]float64)
	for _, d := range c.Parties[0].Docs {
		for t, n := range d.BodyCounts() {
			counts[t] += float64(n)
		}
	}
	freqs := make([]float64, 0, len(counts))
	for _, f := range counts {
		freqs = append(freqs, f)
	}
	fmt.Printf("fitted Zipf exponent (party A bodies): %.3f\n", zipf.FitExponent(freqs))

	// Relevance structure.
	var cross, total, high int
	for pi, p := range c.Parties {
		for _, q := range p.Queries {
			for i, sd := range c.GroundTruth(corpus.QueryRef{Party: pi, Query: q.ID}) {
				total++
				if sd.Ref.Party != pi {
					cross++
				}
				if i < cfg.HighCut {
					high++
				}
			}
		}
	}
	fmt.Printf("relevant (q,d) pairs: %d (%.0f%% cross-party, %d highly relevant)\n",
		total, 100*float64(cross)/float64(total), high)

	if out == "" {
		return nil
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	for pi, p := range c.Parties {
		if err := dumpParty(out, pi, p); err != nil {
			return err
		}
	}
	fmt.Println("wrote TSV dumps to", out)
	return nil
}

// dumpParty writes one party's documents and queries in the interchange
// TSV format of corpus.WriteDocsTSV / corpus.WriteQueriesTSV (readable
// back with the corresponding readers and corpus.FromParties).
func dumpParty(dir string, pi int, p *corpus.Party) error {
	docPath := filepath.Join(dir, fmt.Sprintf("party%d-docs.tsv", pi))
	f, err := os.Create(docPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := corpus.WriteDocsTSV(f, p.Docs); err != nil {
		return err
	}
	qPath := filepath.Join(dir, fmt.Sprintf("party%d-queries.tsv", pi))
	qf, err := os.Create(qPath)
	if err != nil {
		return err
	}
	defer qf.Close()
	return corpus.WriteQueriesTSV(qf, p.Queries)
}
